"""A purely syntactic model of the source tree for cross-file rules.

The contract-coverage rule must answer questions like "does the class that
``_make_rddm`` returns define (or inherit) ``step_batch``?" — *without
importing the code*, because the linter runs in a dependency-free
environment where ``import repro.detectors`` would fail on NumPy.  This
module answers them from the ASTs alone:

* :meth:`ProjectModel.module` — dotted module name -> parsed module
  (packages resolve to their ``__init__.py``);
* :meth:`ProjectModel.resolve_class` — follow ``from X import Y`` re-export
  chains (``repro.detectors`` re-exports ``DDM`` from
  ``repro.detectors.ddm``) to the defining :class:`ClassInfo`;
* :meth:`ProjectModel.class_has_method` — walk the base-class chain, again
  by name resolution, to decide whether a method is defined anywhere on the
  MRO that lives inside the project.  Bases that resolve outside the project
  (``abc.ABC``) are ignored.

Resolution is conservative: anything dynamic (``globals()`` tricks,
conditional imports) resolves to ``None``, and the calling rule reports that
explicitly rather than guessing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

__all__ = ["ClassInfo", "ModuleInfo", "ProjectModel", "dict_entries", "string_names"]

_MAX_RESOLVE_DEPTH = 16


@dataclass
class ClassInfo:
    """One class definition: where it lives, its bases, its own methods."""

    name: str
    module: "ModuleInfo"
    node: ast.ClassDef

    @property
    def methods(self) -> set:
        return {
            item.name
            for item in self.node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }


class ModuleInfo:
    """A parsed module plus its import-alias table and top-level bindings."""

    def __init__(self, dotted: str, path: Path, tree: ast.Module) -> None:
        self.dotted = dotted
        self.path = path
        self.tree = tree
        self.classes: dict = {}
        self.functions: dict = {}
        self.imports: dict = {}  # bound name -> fully dotted origin
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                self.classes[node.name] = ClassInfo(node.name, self, node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[node.name] = node
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    self.imports[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.level:
                    continue  # relative imports: not used in this repo
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )


class ProjectModel:
    """Lazily-parsed modules under one source root (``.../src``)."""

    def __init__(self, src_root: Path) -> None:
        self._src_root = src_root
        self._modules: dict = {}

    def module(self, dotted: str) -> "ModuleInfo | None":
        if dotted in self._modules:
            return self._modules[dotted]
        base = self._src_root / Path(*dotted.split("."))
        for candidate in (base.with_suffix(".py"), base / "__init__.py"):
            if candidate.is_file():
                try:
                    tree = ast.parse(
                        candidate.read_text(encoding="utf-8"),
                        filename=str(candidate),
                    )
                except (SyntaxError, UnicodeDecodeError):
                    break
                info = ModuleInfo(dotted, candidate, tree)
                self._modules[dotted] = info
                return info
        self._modules[dotted] = None
        return None

    # ------------------------------------------------------------ resolution
    def resolve_class(
        self, module: ModuleInfo, name: str, _depth: int = 0
    ) -> "ClassInfo | None":
        """The defining :class:`ClassInfo` for ``name`` as seen from ``module``."""
        if _depth > _MAX_RESOLVE_DEPTH:
            return None
        if name in module.classes:
            return module.classes[name]
        origin = module.imports.get(name)
        if origin is None:
            return None
        return self._resolve_dotted_class(origin, _depth + 1)

    def _resolve_dotted_class(self, dotted: str, depth: int) -> "ClassInfo | None":
        parts = dotted.split(".")
        # Longest module prefix wins: "repro.core.detector.RBMIM" splits into
        # module "repro.core.detector" + attribute chain ["RBMIM"].
        for split in range(len(parts) - 1, 0, -1):
            module = self.module(".".join(parts[:split]))
            if module is None:
                continue
            name = parts[split]
            if split + 1 < len(parts):
                return None  # nested attribute chains are not class names
            return self.resolve_class(module, name, depth)
        return None

    def class_has_method(
        self, cls: ClassInfo, method: str, _depth: int = 0
    ) -> bool:
        """Whether ``method`` is defined on ``cls`` or an in-project ancestor."""
        if _depth > _MAX_RESOLVE_DEPTH:
            return False
        if method in cls.methods:
            return True
        for base in cls.node.bases:
            base_name = _terminal_name(base)
            if base_name is None:
                continue
            parent = self.resolve_class(cls.module, base_name, _depth + 1)
            if parent is not None and self.class_has_method(
                parent, method, _depth + 1
            ):
                return True
        return False

    def returned_class(
        self, module: ModuleInfo, function: ast.FunctionDef
    ) -> "ClassInfo | None":
        """The class instantiated by a factory's ``return SomeClass(...)``."""
        for node in ast.walk(function):
            if isinstance(node, ast.Return) and isinstance(node.value, ast.Call):
                name = _terminal_name(node.value.func)
                if name is not None:
                    return self.resolve_class(module, name)
        return None


def _terminal_name(node: ast.AST) -> "str | None":
    """``DDM`` for ``DDM`` / ``detectors.DDM`` / ``a.b.DDM``; else None."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def dict_entries(
    tree: ast.AST, variable: str
) -> Iterator[tuple]:
    """``(key, lineno, value_node)`` for each string key of a dict literal
    assigned (plain or annotated) to ``variable`` at module top level."""
    for node in tree.body if isinstance(tree, ast.Module) else []:
        target = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        else:
            continue
        if not (isinstance(target, ast.Name) and target.id == variable):
            continue
        if not isinstance(value, ast.Dict):
            continue
        for key_node, value_node in zip(value.keys, value.values):
            if isinstance(key_node, ast.Constant) and isinstance(
                key_node.value, str
            ):
                yield key_node.value, key_node.lineno, value_node


def string_names(tree: ast.AST) -> set:
    """Every string literal in ``tree`` (coverage-by-explicit-listing check)."""
    return {
        node.value
        for node in ast.walk(tree)
        if isinstance(node, ast.Constant) and isinstance(node.value, str)
    }


def references_name(tree: ast.AST, name: str) -> bool:
    """Whether ``tree`` loads ``name`` anywhere (coverage-by-registry check)."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and node.id == name:
            return True
        if isinstance(node, ast.Attribute) and node.attr == name:
            return True
    return False
