"""End-to-end, resumable reproduction of the paper's experimental protocol.

This package wires the repo's layers into one runnable pipeline:

* :mod:`repro.protocol.spec` — :class:`ProtocolSpec`, the declarative
  description of Section IV/V (benchmarks x scenarios x detectors x seeds)
  that expands into content-hash-keyed cells;
* :mod:`repro.protocol.registry` — named, picklable factories for the full
  detector zoo;
* :mod:`repro.protocol.store` — :class:`ResultsStore`, one atomic JSON
  record per cell, which makes interrupted runs resumable and repeated runs
  cached; both stores share :class:`ResultsStoreProtocol`;
* :mod:`repro.protocol.sharded_store` — :class:`ShardedResultsStore`,
  append-only per-writer segments with atomic compaction into a sqlite
  index, for runs past one-file-per-cell scale;
* :mod:`repro.protocol.backends` — the pluggable
  :class:`ExecutionBackend` registry (``serial`` / ``thread`` / ``process``
  / ``cluster``) the pipeline fans cells out over;
* :mod:`repro.protocol.pipeline` — :class:`ProtocolPipeline`, the
  run/resume/status engine over the pluggable execution backends;
* :mod:`repro.protocol.analysis` — folds stored records into the paper's
  tables, ranks, and Friedman / Bonferroni-Dunn / Bayesian summaries.

Run it from the command line::

    python -m repro.protocol run --preset quick --store results/
    python -m repro.protocol status --preset quick --store results/
    python -m repro.protocol report --preset quick --store results/
"""

from repro.protocol.analysis import (
    ProtocolAnalysis,
    analyze_records,
    detection_table,
    records_to_table,
    render_report,
)
from repro.protocol.backends import (
    ClusterBackend,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    backend_names,
    make_backend,
    register_backend,
)
from repro.protocol.pipeline import (
    ProtocolPipeline,
    ProtocolRunSummary,
    ProtocolStatus,
)
from repro.protocol.registry import DETECTOR_NAMES, build_detector, detector_factory
from repro.protocol.sharded_store import ShardedResultsStore
from repro.protocol.spec import ProtocolCell, ProtocolSpec, benchmark_name, build_scenario
from repro.protocol.store import ResultsStore, ResultsStoreProtocol

__all__ = [
    "ClusterBackend",
    "ExecutionBackend",
    "ProcessBackend",
    "SerialBackend",
    "ThreadBackend",
    "backend_names",
    "make_backend",
    "register_backend",
    "ShardedResultsStore",
    "ResultsStoreProtocol",
    "ProtocolAnalysis",
    "analyze_records",
    "detection_table",
    "records_to_table",
    "render_report",
    "ProtocolPipeline",
    "ProtocolRunSummary",
    "ProtocolStatus",
    "DETECTOR_NAMES",
    "build_detector",
    "detector_factory",
    "ProtocolCell",
    "ProtocolSpec",
    "benchmark_name",
    "build_scenario",
    "ResultsStore",
]
