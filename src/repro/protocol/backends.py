"""Pluggable execution backends for fanning out grid cell tasks.

:func:`repro.evaluation.grid.run_cell_tasks` used to hard-code its three
``concurrent.futures`` strategies; this module extracts them behind one
:class:`ExecutionBackend` contract plus a registry, so
:meth:`ProtocolPipeline.run(backend=...) <repro.protocol.pipeline.
ProtocolPipeline.run>` and the ``python -m repro.protocol`` CLI select the
execution strategy declaratively:

* ``serial``  — in-process loop; deterministic ordering, easiest to debug;
* ``thread``  — one :class:`~concurrent.futures.ThreadPoolExecutor`;
* ``process`` — one :class:`~concurrent.futures.ProcessPoolExecutor` with
  broken-pool recovery (a worker death poisons every future sharing the
  pool; innocents are resubmitted on a fresh pool, repeat offenders last,
  up to :data:`_MAX_BROKEN_RETRIES` broken pools per cell).  Payloads that
  cannot be pickled degrade to ``thread`` with a :class:`RuntimeWarning`;
* ``cluster`` — the dask-style client/cluster lifecycle: explicit
  :meth:`~ClusterBackend.connect`, a worker health check before (and during)
  the run, per-cell retry when a worker is lost mid-cell, results gathered
  in completion order (finished cells persist immediately instead of
  queueing behind earlier submissions), and **graceful degradation to local
  execution** — a warning, never a failure — when no cluster is reachable.  The real client is ``distributed.Client`` when the
  optional ``dask.distributed`` package is importable; any object with the
  same ``submit`` / ``scheduler_info`` / ``close`` surface works, which is
  also how the backend is tested without a cluster.

Third parties register their own strategies with :func:`register_backend`;
``run_cell_tasks`` and the pipeline accept either a registered name or an
:class:`ExecutionBackend` instance.
"""

from __future__ import annotations

import time
import traceback
import warnings
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Executor,
    Future,
    wait,
)
from typing import Callable, Protocol, Sequence, runtime_checkable

from repro.evaluation.grid import (
    _MAX_BROKEN_RETRIES,
    CellTask,
    GridCellResult,
    _execute_cell,
    tasks_picklable,
)

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "ClusterBackend",
    "WorkerLost",
    "register_backend",
    "backend_names",
    "make_backend",
    "resolve_backend",
]

Progress = Callable[[GridCellResult], None]


@runtime_checkable
class ExecutionBackend(Protocol):
    """One strategy for executing cell tasks.

    ``run`` preserves input order in its return value, invokes ``progress``
    with every finished cell (in completion order), and surfaces worker
    crashes as failed :class:`GridCellResult`\\ s rather than exceptions.
    """

    name: str

    def run(
        self,
        tasks: Sequence[CellTask],
        *,
        max_workers: "int | None" = None,
        progress: "Progress | None" = None,
    ) -> list[GridCellResult]: ...


# --------------------------------------------------------------- registry
_REGISTRY: dict[str, Callable[..., ExecutionBackend]] = {}


def register_backend(name: str, factory: Callable[..., ExecutionBackend]) -> None:
    """Register ``factory`` (``**options -> backend``) under ``name``."""
    _REGISTRY[name] = factory


def backend_names() -> list[str]:
    """Every registered backend name, sorted."""
    return sorted(_REGISTRY)


def make_backend(name: str, **options) -> ExecutionBackend:
    """Instantiate the backend registered under ``name``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r} (registered: {', '.join(backend_names())})"
        ) from None
    return factory(**options)


def resolve_backend(backend: "str | ExecutionBackend") -> ExecutionBackend:
    """A backend instance from either a registered name or an instance."""
    if isinstance(backend, str):
        return make_backend(backend)
    if isinstance(backend, ExecutionBackend):
        return backend
    raise TypeError(
        f"backend must be a registered name or an ExecutionBackend, "
        f"got {backend!r}"
    )


# ------------------------------------------------------------------ local
class SerialBackend:
    """In-process loop; deterministic ordering, easiest to debug."""

    name = "serial"

    def run(self, tasks, *, max_workers=None, progress=None):
        results = []
        for task in tasks:
            cell_result = task.execute()
            if progress is not None:
                progress(cell_result)
            results.append(cell_result)
        return results


def _run_on_pool(
    tasks: Sequence[CellTask],
    make_executor: Callable[[], Executor],
    progress: "Progress | None",
) -> list[GridCellResult]:
    """Fan tasks over ``concurrent.futures`` with broken-pool recovery.

    A worker death (OOM kill, segfault) breaks the whole process pool: every
    pending future — including cells that never got to run — fails with
    :class:`~concurrent.futures.BrokenExecutor`.  Those cells are resubmitted
    on a fresh executor rather than written off, up to
    ``_MAX_BROKEN_RETRIES`` broken pools per cell; repeat offenders are
    resubmitted last so queued innocents drain before the likely culprit can
    break the next pool.  Only the cells still caught in a broken pool after
    the retry budget are recorded as per-cell failures.
    """
    executor = make_executor()
    futures: dict[Future, int] = {}
    broken_counts: dict[int, int] = {}

    def submit(index: int) -> Future:
        nonlocal executor
        try:
            future = executor.submit(_execute_cell, *tasks[index].args())
        except BrokenExecutor:
            # The pool died since the last submit; replace it.
            executor.shutdown(wait=False, cancel_futures=True)
            executor = make_executor()
            future = executor.submit(_execute_cell, *tasks[index].args())
        futures[future] = index
        return future

    try:
        by_index: dict[int, GridCellResult] = {}
        pending = {submit(index) for index in range(len(tasks))}
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            retry: list[int] = []
            for future in done:
                index = futures.pop(future)
                try:
                    cell_result = future.result()
                except BrokenExecutor:
                    # A worker death poisons every future sharing the pool;
                    # give this cell a fresh pool unless it keeps being
                    # caught in (or causing) the crashes.
                    broken_counts[index] = broken_counts.get(index, 0) + 1
                    if broken_counts[index] <= _MAX_BROKEN_RETRIES:
                        retry.append(index)
                        continue
                    cell_result = GridCellResult(
                        cell=tasks[index].cell,
                        result=None,
                        wall_time=float("nan"),
                        error=traceback.format_exc(),
                    )
                except Exception:  # lint: disable=broad-except -- any exception a worker raised is per-cell data, not fatal to the grid
                    cell_result = GridCellResult(
                        cell=tasks[index].cell,
                        result=None,
                        wall_time=float("nan"),
                        error=traceback.format_exc(),
                    )
                by_index[index] = cell_result
                if progress is not None:
                    progress(cell_result)
            # Repeat offenders last: cells that already saw several broken
            # pools are the likeliest crashers, so queued innocents drain
            # first on the replacement pool.
            for index in sorted(retry, key=lambda i: (broken_counts[i], i)):
                pending.add(submit(index))
    except BaseException:
        # On Ctrl-C (or a raising progress callback) drop the queued cells
        # instead of draining them; in-flight cells still finish.
        executor.shutdown(wait=False, cancel_futures=True)
        raise
    executor.shutdown()
    return [by_index[index] for index in range(len(tasks))]


class ThreadBackend:
    """One thread per worker; right when factories are closures."""

    name = "thread"

    def run(self, tasks, *, max_workers=None, progress=None):
        from concurrent.futures import ThreadPoolExecutor

        return _run_on_pool(
            tasks, lambda: ThreadPoolExecutor(max_workers=max_workers), progress
        )


class ProcessBackend:
    """One OS process per worker (NumPy-heavy cells scale with cores)."""

    name = "process"

    def run(self, tasks, *, max_workers=None, progress=None):
        if not tasks_picklable(tasks):
            warnings.warn(
                "process backend: task payload is not picklable "
                "(lambda/closure factory, or an unpicklable value in "
                "runner_kwargs/run_kwargs); degrading to the thread backend",
                RuntimeWarning,
                stacklevel=2,
            )
            return ThreadBackend().run(
                tasks, max_workers=max_workers, progress=progress
            )
        from concurrent.futures import ProcessPoolExecutor

        return _run_on_pool(
            tasks, lambda: ProcessPoolExecutor(max_workers=max_workers), progress
        )


# ---------------------------------------------------------------- cluster
class WorkerLost(RuntimeError):
    """A cluster worker died while (or before) running a cell.

    Raised by client implementations to signal a *retryable* loss; dask's
    ``distributed.KilledWorker`` is treated identically when available.
    """


def _lost_worker_errors() -> tuple:
    errors: list[type] = [WorkerLost]
    try:  # optional dependency — never required
        from distributed import KilledWorker  # type: ignore

        errors.append(KilledWorker)
    except ImportError:
        pass
    return tuple(errors)


def _default_client_factory(address: "str | None", timeout: float):
    """Connect a real ``distributed.Client`` (import gated: dask is optional)."""

    def connect():
        from distributed import Client  # raises ImportError without dask

        return Client(address=address, timeout=timeout)

    return connect


class ClusterBackend:
    """Dask-style client/cluster execution with degradation-to-local.

    Parameters
    ----------
    address:
        Scheduler address (``tcp://host:port``); ``None`` asks the client
        library for its default (environment-configured) cluster.
    client_factory:
        Zero-argument callable returning a connected client.  Defaults to
        ``distributed.Client(address, timeout=...)``; inject a stand-in for
        testing or for non-dask clusters with the same surface
        (``submit(fn, *args) -> future``, ``scheduler_info()``, ``close()``).
    fallback:
        Registered backend name to degrade to when no cluster is reachable
        (default ``"process"``).
    connect_timeout:
        Seconds to wait for the scheduler before degrading.
    max_retries:
        Per-cell resubmissions after a lost worker before the cell is
        recorded as failed (mirrors the process pool's broken-pool budget).
    poll_interval:
        Seconds between ``future.done()`` sweeps while gathering results in
        completion order.
    """

    name = "cluster"

    def __init__(
        self,
        address: "str | None" = None,
        client_factory: "Callable[[], object] | None" = None,
        fallback: str = "process",
        connect_timeout: float = 5.0,
        max_retries: int = _MAX_BROKEN_RETRIES,
        poll_interval: float = 0.05,
    ) -> None:
        self._address = address
        self._client_factory = client_factory or _default_client_factory(
            address, connect_timeout
        )
        self._fallback = fallback
        self._max_retries = max_retries
        self._poll_interval = poll_interval
        self._lost_errors = _lost_worker_errors()
        self._client: "object | None" = None
        self._connect_error: "BaseException | None" = None

    # -------------------------------------------------------- lifecycle
    def connect(self) -> "object | None":
        """Connect (idempotent); ``None`` when the cluster is unreachable."""
        if self._client is not None:
            return self._client
        try:
            client = self._client_factory()
        except BaseException as error:  # noqa: BLE001 - any failure degrades
            self._connect_error = error
            return None
        if not self.healthy(client):
            self._connect_error = RuntimeError("cluster reports no workers")
            self._close_client(client)
            return None
        self._client = client
        return client

    def healthy(self, client: "object | None" = None) -> bool:
        """Whether the cluster currently reports at least one live worker."""
        client = client if client is not None else self._client
        if client is None:
            return False
        try:
            info = client.scheduler_info()  # type: ignore[attr-defined]
        except Exception:  # lint: disable=broad-except -- any client failure, whatever its type, means "not healthy"
            return False
        return bool(isinstance(info, dict) and info.get("workers"))

    def close(self) -> None:
        if self._client is not None:
            self._close_client(self._client)
            self._client = None

    @staticmethod
    def _close_client(client) -> None:
        try:
            client.close()
        except Exception:  # lint: disable=broad-except -- best-effort close of a possibly-dead client; nothing to do on failure
            pass

    # -------------------------------------------------------------- run
    def run(self, tasks, *, max_workers=None, progress=None):
        client = self.connect()
        if client is None:
            reason = self._connect_error or "no client available"
            warnings.warn(
                f"cluster backend: no cluster reachable at "
                f"{self._address or '<default>'} ({reason}); degrading to "
                f"local {self._fallback!r} execution",
                RuntimeWarning,
                stacklevel=2,
            )
            return make_backend(self._fallback).run(
                tasks, max_workers=max_workers, progress=progress
            )
        try:
            return self._run_on_cluster(client, tasks, max_workers, progress)
        finally:
            self.close()

    @staticmethod
    def _future_done(future) -> bool:
        """Non-blocking readiness poll.  Futures that cannot be polled (no
        ``done`` method, or one that raises) are treated as ready, which
        degrades to a blocking submission-order gather for that client."""
        done = getattr(future, "done", None)
        if done is None:
            return True
        try:
            return bool(done())
        except Exception:  # lint: disable=broad-except -- an unpollable future is treated as ready, degrading to a blocking gather
            return True

    def _run_on_cluster(self, client, tasks, max_workers, progress):
        """Submit every cell; retry cells whose worker was lost mid-flight.

        Results are gathered in **completion order** (polling ``done()``
        futures), so each finished cell reaches ``progress`` — and is
        therefore persisted by the pipeline — the moment it completes,
        never queued behind an earlier-submitted cell still running: a kill
        mid-run loses only cells genuinely in flight.  If the cluster loses
        its last worker mid-run, the unfinished remainder degrades to the
        local fallback instead of failing.
        """
        by_index: dict[int, GridCellResult] = {}
        retries: dict[int, int] = {}

        def submit(index: int):
            return client.submit(_execute_cell, *tasks[index].args())

        pending = {index: submit(index) for index in range(len(tasks))}
        while pending:
            ready = [
                index
                for index in sorted(pending)
                if self._future_done(pending[index])
            ]
            if not ready:
                time.sleep(self._poll_interval)
                continue
            unhealthy_at: "int | None" = None
            for index in ready:
                future = pending.pop(index)
                try:
                    cell_result = future.result()
                except self._lost_errors:
                    retries[index] = retries.get(index, 0) + 1
                    if not self.healthy(client):
                        # The cluster is gone; finish the remainder locally
                        # rather than failing cells that never got to run.
                        unhealthy_at = index
                        break
                    if retries[index] <= self._max_retries:
                        # Resubmit on the (still healthy) cluster.
                        pending[index] = submit(index)
                        continue
                    cell_result = GridCellResult(
                        cell=tasks[index].cell,
                        result=None,
                        wall_time=float("nan"),
                        error=traceback.format_exc(),
                    )
                except Exception:  # lint: disable=broad-except -- whatever the cell raised on the worker is per-cell data, not fatal
                    cell_result = GridCellResult(
                        cell=tasks[index].cell,
                        result=None,
                        wall_time=float("nan"),
                        error=traceback.format_exc(),
                    )
                by_index[index] = cell_result
                if progress is not None:
                    progress(cell_result)
            if unhealthy_at is not None:
                remainder = sorted({unhealthy_at, *pending})
                warnings.warn(
                    f"cluster backend: cluster became unhealthy with "
                    f"{len(remainder)} cells unfinished; degrading the "
                    f"remainder to local {self._fallback!r} execution",
                    RuntimeWarning,
                    stacklevel=3,
                )
                local = make_backend(self._fallback).run(
                    [tasks[i] for i in remainder],
                    max_workers=max_workers,
                    progress=progress,
                )
                by_index.update(zip(remainder, local))
                break
        return [by_index[index] for index in range(len(tasks))]


register_backend("serial", SerialBackend)
register_backend("thread", ThreadBackend)
register_backend("process", ProcessBackend)
register_backend("cluster", ClusterBackend)
