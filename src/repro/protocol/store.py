"""Durable on-disk store of protocol results: one JSON record per cell.

Layout: a root directory holding ``<key>.json`` files (the key is the
content-hashed cell key from :meth:`~repro.protocol.spec.ProtocolSpec.
cell_key`) plus a ``spec.json`` provenance copy of the spec that produced
them.  Three invariants make the store safe to kill at any moment:

* **atomic writes** — records are written to a ``.tmp-*`` sibling, flushed
  and fsynced, then :func:`os.replace`\\ d into place, so a visible
  ``<key>.json`` is always complete;
* **corruption tolerance** — a record that cannot be parsed (e.g. a file
  truncated by a crash of a *non*-atomic writer, or hand-edited) is treated
  as absent, never as an error, so the pipeline simply recomputes that cell;
* **content-hashed keys** — the filename alone decides whether a cell is
  done, so resuming requires no manifest, no database, and no ordering.

Records are plain JSON dictionaries; the store imposes no schema beyond
requiring JSON-serialisable values.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Iterator

__all__ = ["ResultsStore"]

_SUFFIX = ".json"
_TMP_PREFIX = ".tmp-"


class ResultsStore:
    """A directory of one-JSON-record-per-cell results with atomic writes."""

    def __init__(self, root: "str | os.PathLike[str]") -> None:
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)

    @property
    def root(self) -> Path:
        return self._root

    # ------------------------------------------------------------- pathing
    def path_for(self, key: str) -> Path:
        """Where the record for ``key`` lives (whether or not it exists)."""
        safe = key.replace(os.sep, "_")
        if os.altsep:
            safe = safe.replace(os.altsep, "_")
        return self._root / f"{safe}{_SUFFIX}"

    # ------------------------------------------------------------ write API
    def put(self, key: str, record: dict) -> Path:
        """Atomically persist ``record`` under ``key`` (overwriting any old one).

        The record is serialised to canonical (sorted-key) JSON in a
        temporary sibling file, fsynced, and renamed over the final path, so
        readers and crash-restarted runs never observe a partial record.
        """
        path = self.path_for(key)
        self._atomic_write(path, json.dumps(record, indent=2, sort_keys=True))
        return path

    def discard(self, key: str) -> bool:
        """Delete the record for ``key``; returns whether one existed."""
        try:
            self.path_for(key).unlink()
            return True
        except FileNotFoundError:
            return False

    def save_spec(self, spec_json: str) -> Path:
        """Persist a provenance copy of the spec alongside the records."""
        path = self._root / "spec.json"
        self._atomic_write(path, spec_json)
        return path

    def _atomic_write(self, path: Path, payload: str) -> None:
        """tmp-write + fsync + rename; leaves no stray tmp file on failure."""
        descriptor, tmp_name = tempfile.mkstemp(
            prefix=_TMP_PREFIX, suffix=_SUFFIX, dir=self._root
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------- read API
    def get(self, key: str) -> dict | None:
        """The stored record for ``key``, or ``None`` if absent or corrupt."""
        return self._load(self.path_for(key))

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def keys(self) -> list[str]:
        """Keys of every *readable* record, sorted."""
        found = []
        for path in sorted(self._root.glob(f"*{_SUFFIX}")):
            if path.name.startswith(_TMP_PREFIX) or path.name == "spec.json":
                continue
            if self._load(path) is not None:
                found.append(path.name[: -len(_SUFFIX)])
        return found

    def records(self) -> Iterator[tuple[str, dict]]:
        """Iterate ``(key, record)`` over every readable record, sorted by key."""
        for path in sorted(self._root.glob(f"*{_SUFFIX}")):
            if path.name.startswith(_TMP_PREFIX) or path.name == "spec.json":
                continue
            record = self._load(path)
            if record is not None:
                yield path.name[: -len(_SUFFIX)], record

    def __len__(self) -> int:
        return len(self.keys())

    # ------------------------------------------------------------ internals
    @staticmethod
    def _load(path: Path) -> dict | None:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        return record if isinstance(record, dict) else None
