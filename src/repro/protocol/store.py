"""Durable on-disk stores of protocol results, behind one shared contract.

Two implementations exist:

* :class:`ResultsStore` (this module) — one ``<key>.json`` file per cell.
  Simple, greppable, zero-dependency; the right store up to a few thousand
  cells, after which the filesystem becomes the scheduler (every
  ``status()`` is N opens + parses).
* :class:`~repro.protocol.sharded_store.ShardedResultsStore` — append-only
  per-writer segment files compacted into a sqlite index; ``status()`` over
  tens of thousands of cells is one index scan.

Both satisfy :class:`ResultsStoreProtocol`, which is what
:class:`~repro.protocol.pipeline.ProtocolPipeline` consumes — the pipeline
never touches paths, only keys and records.

Three invariants make the single-file store safe to kill at any moment:

* **atomic writes** — records are written to a ``.tmp-*`` sibling, flushed
  and fsynced, then :func:`os.replace`\\ d into place **and the directory
  entry fsynced**, so a visible ``<key>.json`` is always complete and a
  completed rename survives power loss;
* **corruption tolerance** — a record that cannot be parsed (e.g. a file
  truncated by a crash of a *non*-atomic writer, or hand-edited) is treated
  as absent, never as an error, so the pipeline simply recomputes that cell;
* **content-hashed keys** — the filename alone decides whether a cell is
  done, so resuming requires no manifest, no database, and no ordering.

Records are plain JSON dictionaries; the store imposes no schema beyond
requiring JSON-serialisable values.  Writes are **strict** JSON: non-finite
floats are serialised as ``null`` (see :mod:`repro.core.jsonio`), while
reads stay tolerant of legacy records carrying bare ``NaN`` tokens.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterable, Iterator, Protocol, runtime_checkable

from repro.core.durability import atomic_write_text as _atomic_write_text
from repro.core.durability import fsync_dir as _fsync_dir
from repro.core.jsonio import dumps_strict

__all__ = ["ResultsStore", "ResultsStoreProtocol"]

_SUFFIX = ".json"
_TMP_PREFIX = ".tmp-"
_CHECKPOINT_DIR = "checkpoints"


def _safe_key(key: str) -> str:
    safe = key.replace(os.sep, "_")
    if os.altsep:
        safe = safe.replace(os.altsep, "_")
    return safe


def _checkpoint_path(root: Path, key: str) -> Path:
    """Where a mid-cell runner checkpoint for ``key`` lives under ``root``.

    Checkpoints are a *side area* (``root/checkpoints/``), deliberately
    outside the record namespace: an in-flight checkpoint must never show up
    in ``records()``/``statuses()`` as if the cell were done.  Shared by both
    store backends.
    """
    return root / _CHECKPOINT_DIR / f"{_safe_key(key)}{_SUFFIX}"


def _read_json_dict(path: Path) -> "dict | None":
    """Parse a JSON object from ``path``; missing or corrupt means ``None``."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            record = json.load(handle)
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return None
    return record if isinstance(record, dict) else None


def _discard_checkpoint(root: Path, key: str) -> bool:
    """Delete the checkpoint for ``key``; returns whether one existed."""
    path = _checkpoint_path(root, key)
    try:
        path.unlink()
    except FileNotFoundError:
        return False
    _fsync_dir(path.parent)
    return True


# Hoisted to repro.core.durability so stdlib-only layers (e.g. the grid's
# save_json) share the same tmp-write + fsync + replace + dir-fsync
# discipline; re-exported under the historical private names because
# ShardedResultsStore imports them from here.


@runtime_checkable
class ResultsStoreProtocol(Protocol):
    """What the pipeline requires of a results store.

    Keys are the content-hashed cell keys from
    :meth:`~repro.protocol.spec.ProtocolSpec.cell_key`; records are plain
    JSON dictionaries.  ``statuses`` exists so ``pending()``/``status()``
    over large specs are a single bulk scan instead of a per-key ``get``
    loop — implementations back it with whatever index they have.

    Both built-in stores additionally expose an *optional* mid-cell
    checkpoint side area (``checkpoint_path_for`` / ``get_checkpoint`` /
    ``discard_checkpoint``) used by the pipeline's ``checkpoint_every``
    resume; the pipeline duck-types these, so third-party stores without
    them still satisfy this protocol and simply run without mid-cell
    checkpoints.
    """

    def put(self, key: str, record: dict): ...

    def get(self, key: str) -> "dict | None": ...

    def discard(self, key: str) -> bool: ...

    def keys(self) -> list[str]: ...

    def records(self) -> Iterator[tuple[str, dict]]: ...

    def statuses(self) -> dict[str, bool]: ...

    def get_many(self, keys: Iterable[str]) -> dict[str, dict]: ...

    def save_spec(self, spec_json: str): ...

    def __contains__(self, key: str) -> bool: ...

    def __len__(self) -> int: ...


class ResultsStore:
    """A directory of one-JSON-record-per-cell results with atomic writes."""

    def __init__(self, root: "str | os.PathLike[str]") -> None:
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)

    @property
    def root(self) -> Path:
        return self._root

    # ------------------------------------------------------------- pathing
    def path_for(self, key: str) -> Path:
        """Where the record for ``key`` lives (whether or not it exists)."""
        return self._root / f"{_safe_key(key)}{_SUFFIX}"

    # ------------------------------------------------------------ write API
    def put(self, key: str, record: dict) -> Path:
        """Atomically persist ``record`` under ``key`` (overwriting any old one).

        The record is serialised to canonical (sorted-key) **strict** JSON —
        non-finite floats become ``null`` — in a temporary sibling file,
        fsynced, and renamed over the final path (with a directory fsync), so
        readers and crash-restarted runs never observe a partial record.
        """
        path = self.path_for(key)
        self._atomic_write(path, dumps_strict(record, indent=2, sort_keys=True))
        return path

    def discard(self, key: str) -> bool:
        """Delete the record for ``key``; returns whether one existed."""
        try:
            self.path_for(key).unlink()
        except FileNotFoundError:
            return False
        _fsync_dir(self._root)
        return True

    def save_spec(self, spec_json: str) -> Path:
        """Persist a provenance copy of the spec alongside the records."""
        path = self._root / "spec.json"
        self._atomic_write(path, spec_json)
        return path

    # --------------------------------------------------- mid-cell checkpoints
    def checkpoint_path_for(self, key: str) -> Path:
        """Side-area path for the mid-cell runner checkpoint of ``key``.

        The runner writes here atomically during a cell; the pipeline
        discards it the moment the cell's record is persisted.  Living in
        ``checkpoints/``, it is invisible to ``records()``/``statuses()``.
        """
        return _checkpoint_path(self._root, key)

    def get_checkpoint(self, key: str) -> "dict | None":
        """The stored checkpoint payload for ``key``, or ``None``."""
        return _read_json_dict(self.checkpoint_path_for(key))

    def discard_checkpoint(self, key: str) -> bool:
        """Delete the checkpoint for ``key``; returns whether one existed."""
        return _discard_checkpoint(self._root, key)

    def _atomic_write(self, path: Path, payload: str) -> None:
        _atomic_write_text(self._root, path, payload)

    # ------------------------------------------------------------- read API
    def get(self, key: str) -> "dict | None":
        """The stored record for ``key``, or ``None`` if absent or corrupt."""
        return self._load(self.path_for(key))

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def keys(self) -> list[str]:
        """Keys of every *readable* record, sorted."""
        return [key for key, _ in self.records()]

    def records(self) -> Iterator[tuple[str, dict]]:
        """Iterate ``(key, record)`` over every readable record, sorted by key."""
        for path in sorted(self._root.glob(f"*{_SUFFIX}")):
            if path.name.startswith(_TMP_PREFIX) or path.name == "spec.json":
                continue
            record = self._load(path)
            if record is not None:
                yield path.name[: -len(_SUFFIX)], record

    def statuses(self) -> dict[str, bool]:
        """``key -> record is error-free`` for every readable record.

        One directory scan; each record file is parsed exactly once, however
        many keys the caller goes on to interrogate.
        """
        return {
            key: record.get("error") is None for key, record in self.records()
        }

    def get_many(self, keys: Iterable[str]) -> dict[str, dict]:
        """Records for every key in ``keys`` that has a readable record."""
        found: dict[str, dict] = {}
        for key in keys:
            record = self.get(key)
            if record is not None:
                found[key] = record
        return found

    def __len__(self) -> int:
        return len(self.keys())

    # ------------------------------------------------------------ internals
    @staticmethod
    def _load(path: Path) -> "dict | None":
        return _read_json_dict(path)
