"""Sharded results store: append-only segments + an atomic sqlite index.

The single-file :class:`~repro.protocol.store.ResultsStore` pays one file
per cell — fine at hundreds of cells, pathological at the full protocol's
tens of thousands (every ``status()`` is N opens + parses, and the
filesystem becomes the scheduler).  :class:`ShardedResultsStore` keeps the
same contract (:class:`~repro.protocol.store.ResultsStoreProtocol`, same
crash-resume and content-hash-key invalidation semantics) with a log-
structured layout::

    root/
      spec.json            # provenance copy of the spec (atomic write)
      index.sqlite         # compacted records, one row per key
      segments/
        seg-<created_ns>-<pid>-<token>.jsonl   # append-only, 1 record/line

Nothing is created before the first write: merely *opening* a directory as
a sharded store (``status`` against a JSON store, say) must not scaffold a
layout that later confuses store-format auto-detection.

**Writes** append one strict-JSON line (``{"k": key, "r": record,
"t": <write_ns>}``) to the writer's own segment file and fsync it; the
segment's directory entry is fsynced when the segment is created.  A crash
mid-append leaves a torn last line, which readers treat as absent — exactly
the corruption tolerance of the single-file store, so SIGKILL at any point
loses at most the in-flight record.  ``record: null`` lines are tombstones
(:meth:`discard`).

**Reads** merge the sqlite index with every live segment, segments winning.
Among segment lines, *write time* decides: lines are ordered by their
``t`` stamp (never reordering lines within a file), so last write wins by
wall clock, not by filename — a resumed run's segment must override an
older run's record (a retried failure, a tombstone) even though its
pid/uuid may sort lexicographically first.  Legacy lines without a stamp
inherit their segment's creation time (from the filename, else the file
mtime).  ``statuses()`` never parses record payloads for indexed rows:
completion state is a column.  Each store instance keeps an in-memory
overlay of its own appends plus a parse cache of foreign segments keyed by
(size, mtime), so per-key ``get()`` loops cost no re-reads between writes.

**Compaction** (:meth:`compact`) folds the old index plus every segment into
a fresh sqlite database built as a ``.tmp-*`` sibling, fsyncs it,
:func:`os.replace`\\ s it over ``index.sqlite``, fsyncs the directory, and
only then unlinks the folded segments.  A crash before the replace leaves
the store untouched (the stray tmp is cleaned on the next compaction); a
crash after it merely leaves already-indexed segments behind, which the
merge dedupes and the next compaction removes.  Compact when no other
process is writing (the CLI exposes ``python -m repro.protocol compact``).

Legacy tolerance: lines or rows carrying bare ``NaN`` (written before the
strict-serialisation fix) still parse on read; everything written by this
module is strict JSON.
"""

from __future__ import annotations

import json
import os
import sqlite3
import tempfile
import time
import uuid
from pathlib import Path
from typing import IO, Iterable, Iterator

from repro.core.jsonio import dumps_strict
from repro.protocol.store import (
    _atomic_write_text,
    _checkpoint_path,
    _discard_checkpoint,
    _fsync_dir,
    _read_json_dict,
)

__all__ = ["ShardedResultsStore"]

_SEGMENT_DIR = "segments"
_SEGMENT_PREFIX = "seg-"
_SEGMENT_SUFFIX = ".jsonl"
_INDEX_NAME = "index.sqlite"
_TMP_PREFIX = ".tmp-"

_SCHEMA = (
    "CREATE TABLE IF NOT EXISTS records ("
    " key TEXT PRIMARY KEY,"
    " ok INTEGER NOT NULL,"  # 1 = record has no "error"; statuses() reads
    " record TEXT NOT NULL"  # only this column plus the key
    ")"
)


class ShardedResultsStore:
    """Append-only per-writer segments with atomic compaction into sqlite."""

    def __init__(self, root: "str | os.PathLike[str]") -> None:
        self._root = Path(root)
        self._segments = self._root / _SEGMENT_DIR
        self._segment_path: "Path | None" = None
        self._segment_file: "IO[str] | None" = None
        # This instance's own appends, in order: (write_ns, key, record).
        self._own_entries: list[tuple[int, str, "dict | None"]] = []
        # Parsed foreign segments keyed by path -> ((size, mtime_ns), entries).
        self._entry_cache: dict[
            Path, tuple[tuple[int, int], list[tuple["int | None", str, "dict | None"]]]
        ] = {}

    @property
    def root(self) -> Path:
        return self._root

    @property
    def index_path(self) -> Path:
        return self._root / _INDEX_NAME

    # ------------------------------------------------------------ write API
    def put(self, key: str, record: dict) -> Path:
        """Durably append ``record`` under ``key`` (last write wins)."""
        return self.put_many([(key, record)])

    def put_many(self, items: Iterable[tuple[str, dict]]) -> Path:
        """Append many records with a single fsync (bulk-load fast path)."""
        return self._append_entries(list(items))

    def discard(self, key: str) -> bool:
        """Tombstone ``key``; returns whether a record was visible before."""
        existed = self.get(key) is not None
        if existed:
            self._append_entries([(key, None)])
        return existed

    def save_spec(self, spec_json: str) -> Path:
        """Persist a provenance copy of the spec alongside the records.

        Also scaffolds ``segments/``: save_spec runs at the start of every
        pipeline run, so a run killed before its first record still leaves
        a sharded layout for store-format auto-detection to resume with.
        """
        self._segments.mkdir(parents=True, exist_ok=True)
        _fsync_dir(self._root)
        path = self._root / "spec.json"
        _atomic_write_text(self._root, path, spec_json)
        return path

    # --------------------------------------------------- mid-cell checkpoints
    def checkpoint_path_for(self, key: str) -> Path:
        """Side-area path for the mid-cell runner checkpoint of ``key``.

        Checkpoints are atomic whole files (they are rewritten every few
        chunks, which would bloat an append-only segment), living under
        ``checkpoints/`` where neither the segment scan nor the index ever
        looks.  The directory is created by the checkpoint writer, not here:
        read-only opens must leave no trace.
        """
        return _checkpoint_path(self._root, key)

    def get_checkpoint(self, key: str) -> "dict | None":
        """The stored checkpoint payload for ``key``, or ``None``."""
        return _read_json_dict(self.checkpoint_path_for(key))

    def discard_checkpoint(self, key: str) -> bool:
        """Delete the checkpoint for ``key``; returns whether one existed."""
        return _discard_checkpoint(self._root, key)

    def _append_entries(
        self, entries: "list[tuple[str, dict | None]]"
    ) -> Path:
        # The per-line write stamp is what makes last-write-wins temporal
        # across segments (a resumed run's pid can sort before an old run's).
        stamped = [
            (time.time_ns(), key, record)  # lint: disable=determinism -- wall-clock write stamp for last-write-wins segment ordering, never part of seeded results
            for key, record in entries
        ]
        lines = [
            dumps_strict({"k": key, "r": record, "t": stamp}, sort_keys=True)
            for stamp, key, record in stamped
        ]
        handle = self._writer()
        handle.write("".join(line + "\n" for line in lines))
        handle.flush()
        os.fsync(handle.fileno())
        self._own_entries.extend(stamped)
        assert self._segment_path is not None
        return self._segment_path

    def _writer(self) -> "IO[str]":
        """This store instance's own segment, opened lazily on first append.

        The layout (``root/segments/``) is created here, on the first write,
        never in ``__init__``: read-only opens must leave no trace.
        """
        if self._segment_file is None:
            self._segments.mkdir(parents=True, exist_ok=True)
            _fsync_dir(self._root)
            name = (
                f"{_SEGMENT_PREFIX}{time.time_ns():020d}-{os.getpid()}-"  # lint: disable=determinism -- wall-clock segment name orders crash leftovers; results content stays seeded
                f"{uuid.uuid4().hex[:12]}{_SEGMENT_SUFFIX}"
            )
            self._segment_path = self._segments / name
            self._segment_file = open(
                self._segment_path, "a", encoding="utf-8"
            )
            # Make the new directory entry itself durable, not just the data.
            _fsync_dir(self._segments)
        return self._segment_file

    def close(self) -> None:
        """Close this instance's segment; the next append opens a fresh one."""
        if self._segment_file is not None:
            self._segment_file.close()
            self._segment_file = None
            self._segment_path = None
            self._own_entries = []  # the closed file is re-read from disk

    # ------------------------------------------------------------- read API
    def get(self, key: str) -> "dict | None":
        found: "dict | None" = None
        overlaid = False
        for seen, record in self._segment_entries():
            if seen == key:  # keep scanning: later lines win
                found, overlaid = record, True
        if overlaid:
            return found  # None here means a tombstone
        rows = self._index_rows(keys=(key,))
        if key in rows:
            return self._parse_record(rows[key][1])
        return None

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def keys(self) -> list[str]:
        return sorted(self._merged_records())

    def records(self) -> Iterator[tuple[str, dict]]:
        merged = self._merged_records()
        for key in sorted(merged):
            yield key, merged[key]

    def __len__(self) -> int:
        return len(self._merged_records())

    def statuses(self) -> dict[str, bool]:
        """``key -> record is error-free``: one index scan + segment overlay.

        Indexed rows are answered from the ``ok`` column without parsing a
        single record payload; only the (few, small) uncompacted segments
        are parsed.
        """
        out: dict[str, bool] = {}
        path = self.index_path
        if path.exists():
            try:
                connection = sqlite3.connect(f"file:{path}?mode=ro", uri=True)
            except sqlite3.Error:
                connection = None
            if connection is not None:
                try:
                    # Deliberately no `record` column: completion state must
                    # not cost a payload fetch per cell.
                    cursor = connection.execute("SELECT key, ok FROM records")
                    out = {key: bool(ok) for key, ok in cursor}
                except sqlite3.Error:
                    out = {}
                finally:
                    connection.close()
        for key, record in self._segment_entries():
            if record is None:
                out.pop(key, None)
            else:
                out[key] = record.get("error") is None
        return out

    def get_many(self, keys: Iterable[str]) -> dict[str, dict]:
        """Records for every key in ``keys``: one indexed query + overlay."""
        wanted = list(keys)
        found: dict[str, dict] = {}
        for key, (_, payload) in self._index_rows(keys=wanted).items():
            record = self._parse_record(payload)
            if record is not None:
                found[key] = record
        wanted_set = set(wanted)
        for key, record in self._segment_entries():
            if key not in wanted_set:
                continue
            if record is None:
                found.pop(key, None)
            else:
                found[key] = record
        return found

    # ----------------------------------------------------------- compaction
    def compact(self) -> Path:
        """Fold every segment (and the old index) into a fresh atomic index.

        Safe against a kill at any point: the new index becomes visible only
        through ``os.replace`` + directory fsync, and segments are unlinked
        strictly afterwards, so the worst outcomes are (a) a stray tmp
        database — cleaned up here on the next run — or (b) already-indexed
        segments left behind, which reads dedupe and the next compaction
        removes.  Run it from a single process while no writer is active.
        """
        self.close()  # fold our own segment too
        self._root.mkdir(parents=True, exist_ok=True)
        for stray in self._root.glob(f"{_TMP_PREFIX}*"):
            try:
                os.unlink(stray)
            except OSError:
                pass
        segment_paths = self._segment_files()
        merged: dict[str, tuple[int, str]] = dict(self._index_rows())
        # Temporal write order (see _segment_entries), so the index bakes in
        # the *newest* record per key, not the lexicographically-last one.
        for key, record in self._segment_entries():
            if record is None:
                merged.pop(key, None)
            else:
                ok = int(record.get("error") is None)
                merged[key] = (ok, dumps_strict(record, sort_keys=True))

        descriptor, tmp_name = tempfile.mkstemp(
            prefix=_TMP_PREFIX, suffix=".sqlite", dir=self._root
        )
        os.close(descriptor)
        try:
            connection = sqlite3.connect(tmp_name)
            try:
                connection.execute(_SCHEMA)
                connection.executemany(
                    "INSERT OR REPLACE INTO records (key, ok, record) "
                    "VALUES (?, ?, ?)",
                    (
                        (key, ok, payload)
                        for key, (ok, payload) in merged.items()
                    ),
                )
                connection.commit()
            finally:
                connection.close()
            descriptor = os.open(tmp_name, os.O_RDONLY)
            try:
                os.fsync(descriptor)
            finally:
                os.close(descriptor)
            os.replace(tmp_name, self.index_path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        _fsync_dir(self._root)
        # The folded segments are now redundant; losing power between the
        # unlinks only leaves duplicates that reads dedupe.  Unlink oldest
        # first (segment_paths order): a surviving segment must always be at
        # least as new as everything already removed, or its stale records
        # would override the index.
        for path in segment_paths:
            try:
                os.unlink(path)
            except OSError:
                pass
        _fsync_dir(self._segments)
        self._entry_cache.clear()
        return self.index_path

    # ------------------------------------------------------------ internals
    def _segment_files(self) -> list[Path]:
        """Live segments, oldest first (creation time, then name).

        Oldest-first also fixes the *unlink* order in :meth:`compact`: a
        crash between unlinks must never leave an older segment alive after
        a newer one for the same key has been removed, or the leftover would
        override the (newer) indexed record on the next read.
        """
        if not self._segments.is_dir():
            return []
        return sorted(
            self._segments.glob(f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}"),
            key=lambda path: (self._segment_ns(path), path.name),
        )

    @staticmethod
    def _segment_ns(path: Path) -> int:
        """Creation time embedded in the segment name; legacy names (no
        zero-padded stamp) fall back to the file's mtime."""
        stamp = path.name[len(_SEGMENT_PREFIX) :].split("-", 1)[0]
        if len(stamp) == 20 and stamp.isdigit():
            return int(stamp)
        try:
            return path.stat().st_mtime_ns
        except OSError:
            return 0

    def _segment_entries(self) -> Iterator[tuple[str, "dict | None"]]:
        """Every (key, record-or-tombstone) across segments, oldest write
        first — so a consumer applying "later yields win" gets temporal
        last-write-wins.

        Ordering key is the per-line write stamp (legacy unstamped lines
        inherit their segment's creation time), clamped so that lines never
        reorder *within* a file even across a backwards clock step; ties
        break by segment age, then line order.
        """
        ordered: list[tuple[int, int, int, str, "dict | None"]] = []
        for seg_order, path in enumerate(self._segment_files()):
            if path == self._segment_path and self._segment_file is not None:
                parsed: list = list(self._own_entries)
            else:
                parsed = self._parsed_entries(path)
            seg_ns = self._segment_ns(path)
            floor = 0
            for line_order, (stamp, key, record) in enumerate(parsed):
                floor = max(floor, stamp if stamp is not None else seg_ns)
                ordered.append((floor, seg_order, line_order, key, record))
        ordered.sort(key=lambda entry: entry[:3])
        for _, _, _, key, record in ordered:
            yield key, record

    def _parsed_entries(
        self, path: Path
    ) -> list[tuple["int | None", str, "dict | None"]]:
        """Parsed lines of a foreign segment, cached by (size, mtime)."""
        try:
            stat = path.stat()
        except OSError:
            self._entry_cache.pop(path, None)
            return []
        signature = (stat.st_size, stat.st_mtime_ns)
        cached = self._entry_cache.get(path)
        if cached is not None and cached[0] == signature:
            return cached[1]
        parsed = list(self._entries_of(path))
        self._entry_cache[path] = (signature, parsed)
        return parsed

    @staticmethod
    def _entries_of(
        path: Path,
    ) -> Iterator[tuple["int | None", str, "dict | None"]]:
        try:
            data = path.read_bytes()
        except OSError:
            return
        for line in data.split(b"\n"):
            if not line.strip():
                continue
            try:
                entry = json.loads(line.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                continue  # torn tail or hand-introduced corruption
            if not isinstance(entry, dict) or not isinstance(
                entry.get("k"), str
            ):
                continue
            record = entry.get("r")
            stamp = entry.get("t")
            if isinstance(stamp, bool) or not isinstance(stamp, int):
                stamp = None
            if record is None or isinstance(record, dict):
                yield stamp, entry["k"], record

    def _index_rows(
        self, keys: "Iterable[str] | None" = None
    ) -> dict[str, tuple[int, str]]:
        """``key -> (ok, record_json)`` from the index (empty if no index)."""
        path = self.index_path
        if not path.exists():
            return {}
        try:
            connection = sqlite3.connect(f"file:{path}?mode=ro", uri=True)
        except sqlite3.Error:
            return {}
        try:
            if keys is None:
                cursor = connection.execute(
                    "SELECT key, ok, record FROM records"
                )
                return {key: (ok, payload) for key, ok, payload in cursor}
            rows: dict[str, tuple[int, str]] = {}
            wanted = list(dict.fromkeys(keys))
            for start in range(0, len(wanted), 500):
                chunk = wanted[start : start + 500]
                marks = ",".join("?" * len(chunk))
                cursor = connection.execute(
                    "SELECT key, ok, record FROM records "
                    f"WHERE key IN ({marks})",
                    chunk,
                )
                rows.update(
                    {key: (ok, payload) for key, ok, payload in cursor}
                )
            return rows
        except sqlite3.Error:
            # A half-written or foreign file where the index should be is
            # treated like corruption everywhere else: absent, not fatal.
            return {}
        finally:
            connection.close()

    def _merged_records(self) -> dict[str, dict]:
        merged: dict[str, dict] = {}
        for key, (_, payload) in self._index_rows().items():
            record = self._parse_record(payload)
            if record is not None:
                merged[key] = record
        for key, record in self._segment_entries():
            if record is None:
                merged.pop(key, None)
            else:
                merged[key] = record
        return merged

    @staticmethod
    def _parse_record(payload: str) -> "dict | None":
        try:
            record = json.loads(payload)
        except (json.JSONDecodeError, TypeError):
            return None
        return record if isinstance(record, dict) else None
