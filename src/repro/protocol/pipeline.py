"""Resumable execution of a :class:`~repro.protocol.spec.ProtocolSpec`.

:class:`ProtocolPipeline` glues the layers together: the spec expands into
cells, each pending cell becomes a :class:`~repro.evaluation.grid.CellTask`
(scenario stream factory from :mod:`repro.streams.scenarios`, detector
factory from the registry, the paper's default classifier), a pluggable
:class:`~repro.protocol.backends.ExecutionBackend` fans the tasks out, and
every finished cell is **immediately** persisted into the results store
before any progress callback runs.  Because persistence is per-cell and
atomic (or append-durable, for the sharded store), a run killed at any
point loses at most the cells in flight; re-invoking the pipeline skips
every stored cell and recomputes only the rest.

The pipeline consumes stores only through
:class:`~repro.protocol.store.ResultsStoreProtocol` — the single-file
:class:`~repro.protocol.store.ResultsStore` and the segment-based
:class:`~repro.protocol.sharded_store.ShardedResultsStore` are
interchangeable, and ``pending()``/``status()`` are one bulk
:meth:`~repro.protocol.store.ResultsStoreProtocol.statuses` scan rather
than a per-key ``get`` loop.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.evaluation.experiment import default_classifier_factory
from repro.evaluation.grid import (
    CellTask,
    GridCell,
    GridCellResult,
    cell_record,
    run_cell_tasks,
)
from repro.evaluation.results import ResultTable
from repro.protocol.backends import ExecutionBackend
from repro.protocol.registry import detector_factory
from repro.protocol.spec import ProtocolCell, ProtocolSpec, callable_label
from repro.protocol.store import ResultsStore, ResultsStoreProtocol

__all__ = ["ProtocolStatus", "ProtocolRunSummary", "ProtocolPipeline"]


@dataclass(frozen=True)
class ProtocolStatus:
    """Cell accounting of a store against a spec."""

    n_cells: int
    n_completed: int
    n_failed: int

    @property
    def n_pending(self) -> int:
        return self.n_cells - self.n_completed - self.n_failed

    @property
    def done(self) -> bool:
        return self.n_completed == self.n_cells

    def describe(self) -> str:
        return (
            f"{self.n_cells} cells: {self.n_completed} completed, "
            f"{self.n_failed} failed, {self.n_pending} pending"
        )


@dataclass
class ProtocolRunSummary:
    """Outcome of one :meth:`ProtocolPipeline.run` invocation."""

    n_cells: int
    n_skipped: int
    n_executed: int
    n_failed: int
    wall_time: float
    executed_keys: list[str] = field(default_factory=list)

    def describe(self) -> str:
        return (
            f"{self.n_cells} cells: {self.n_skipped} cached, "
            f"{self.n_executed} executed ({self.n_failed} failed) "
            f"in {self.wall_time:.1f}s"
        )


class ProtocolPipeline:
    """Run, resume, and inspect one protocol spec against one results store.

    Parameters
    ----------
    spec:
        The protocol to execute.
    store:
        Any :class:`~repro.protocol.store.ResultsStoreProtocol`
        implementation (:class:`ResultsStore`,
        :class:`~repro.protocol.sharded_store.ShardedResultsStore`, ...).
        A bare directory path means a single-file :class:`ResultsStore`.
    classifier_factory:
        Base classifier for every cell; defaults to the paper's
        cost-sensitive perceptron tree.  Must be picklable for the process
        backend.
    """

    def __init__(
        self,
        spec: ProtocolSpec,
        store: "ResultsStoreProtocol | str | os.PathLike[str]",
        classifier_factory: Callable | None = None,
    ) -> None:
        self._spec = spec
        if isinstance(store, (str, os.PathLike)):
            store = ResultsStore(store)
        self._store = store
        self._classifier_factory = classifier_factory or default_classifier_factory
        # Hashed into every cell key: a different classifier must never be
        # served records computed with another one.
        self._classifier_label = callable_label(self._classifier_factory)

    @property
    def spec(self) -> ProtocolSpec:
        return self._spec

    @property
    def store(self) -> ResultsStoreProtocol:
        return self._store

    # -------------------------------------------------------------- planning
    def cells(self) -> list[tuple[ProtocolCell, str]]:
        """Every (cell, key) of the spec, in deterministic order."""
        return [
            (cell, self._spec.cell_key(cell, self._classifier_label))
            for cell in self._spec.expand()
        ]

    def pending(self, retry_failed: bool = True) -> list[tuple[ProtocolCell, str]]:
        """Cells with no usable stored record (optionally retrying failures).

        One bulk :meth:`~repro.protocol.store.ResultsStoreProtocol.statuses`
        scan of the store, not a per-key ``get`` loop.
        """
        statuses = self._store.statuses()
        remaining = []
        for cell, key in self.cells():
            ok = statuses.get(key)
            if ok is None or (not ok and retry_failed):
                remaining.append((cell, key))
        return remaining

    def task_for(
        self, cell: ProtocolCell, checkpoint_every: int | None = None
    ) -> CellTask:
        """The fully-specified, picklable unit of work for one cell.

        With ``checkpoint_every`` set (and a store exposing the checkpoint
        side area), the runner periodically persists a mid-cell
        :class:`~repro.evaluation.checkpoint.RunnerCheckpoint` under the
        cell's key and resumes from it on re-execution — the checkpoint path
        crosses the process boundary as a plain string, so every backend
        stays picklable.
        """
        runner_kwargs = {
            "window_size": self._spec.window_size,
            "pretrain_size": self._spec.pretrain_size,
            "chunk_size": self._spec.chunk_size,
            "batch_mode": self._spec.batch_mode,
        }
        run_kwargs = {
            "n_instances": self._spec.n_instances,
            "drift_tolerance": self._spec.drift_tolerance,
        }
        if checkpoint_every is not None:
            path_for = getattr(self._store, "checkpoint_path_for", None)
            if path_for is not None:
                key = self._spec.cell_key(cell, self._classifier_label)
                run_kwargs["checkpoint_path"] = str(path_for(key))
                run_kwargs["checkpoint_every"] = int(checkpoint_every)
        return CellTask(
            cell=GridCell(
                stream=cell.benchmark, detector=cell.detector, seed=cell.seed
            ),
            stream_factory=self._spec.stream_factory(cell),
            detector_factory=detector_factory(cell.detector),
            classifier_factory=self._classifier_factory,
            runner_kwargs=runner_kwargs,
            run_kwargs=run_kwargs,
        )

    # ------------------------------------------------------------- execution
    def run(
        self,
        max_workers: int | None = None,
        backend: "str | ExecutionBackend" = "process",
        progress: Callable[[GridCellResult], None] | None = None,
        retry_failed: bool = True,
        max_cells: int | None = None,
        checkpoint_every: int | None = None,
    ) -> ProtocolRunSummary:
        """Execute every pending cell, persisting each the moment it finishes.

        Completed cells (a readable stored record without an error) are
        **never recomputed**; re-invoking after an interruption finishes only
        the remainder.  ``backend`` is a registered backend name (``serial``
        / ``thread`` / ``process`` / ``cluster``) or an
        :class:`~repro.protocol.backends.ExecutionBackend` instance;
        ``max_cells`` caps how many pending cells this invocation takes on
        (useful for incremental/smoke runs).  ``checkpoint_every`` makes
        resume *mid-cell*: each runner persists a checkpoint into the store's
        side area at least every that many instances, a killed run re-enters
        its in-flight cells from those checkpoints (bit-identical to an
        uninterrupted run), and each cell's checkpoint is discarded the
        moment its record lands.
        """
        started = time.perf_counter()
        self._store.save_spec(self._spec.to_json())
        todo = self.pending(retry_failed=retry_failed)
        n_total = len(self._spec)
        n_skipped = n_total - len(todo)
        if max_cells is not None:
            todo = todo[: max(0, int(max_cells))]
        if not todo:
            return ProtocolRunSummary(
                n_cells=n_total,
                n_skipped=n_skipped,
                n_executed=0,
                n_failed=0,
                wall_time=time.perf_counter() - started,
            )

        key_of = {
            (cell.benchmark, cell.detector, cell.seed): key for cell, key in todo
        }
        cell_of = {
            (cell.benchmark, cell.detector, cell.seed): cell for cell, _ in todo
        }
        executed_keys: list[str] = []

        discard_checkpoint = (
            getattr(self._store, "discard_checkpoint", None)
            if checkpoint_every is not None
            else None
        )

        def persist(cell_result: GridCellResult) -> None:
            grid_cell = cell_result.cell
            coords = (grid_cell.stream, grid_cell.detector, grid_cell.seed)
            key = key_of[coords]
            self._store.put(key, self._record(cell_of[coords], key, cell_result))
            if discard_checkpoint is not None:
                # The cell's record is durable; its mid-cell checkpoint is
                # now stale and must not resurrect on a later retry.
                discard_checkpoint(key)
            executed_keys.append(key)
            if progress is not None:
                progress(cell_result)

        tasks = [self.task_for(cell, checkpoint_every) for cell, _ in todo]
        results = run_cell_tasks(
            tasks, backend=backend, max_workers=max_workers, progress=persist
        )
        n_failed = sum(1 for cell_result in results if not cell_result.ok)
        return ProtocolRunSummary(
            n_cells=n_total,
            n_skipped=n_skipped,
            n_executed=len(results),
            n_failed=n_failed,
            wall_time=time.perf_counter() - started,
            executed_keys=executed_keys,
        )

    def _record(
        self, cell: ProtocolCell, key: str, cell_result: GridCellResult
    ) -> dict:
        record = cell_record(cell_result)
        record.update(
            key=key,
            benchmark=cell.benchmark,
            family=cell.family,
            n_classes=cell.n_classes,
            scenario=cell.scenario,
            spec_name=self._spec.name,
            run_parameters=self._spec.run_parameters(self._classifier_label),
        )
        return record

    # ------------------------------------------------------------ inspection
    def status(self, retry_failed: bool = True) -> ProtocolStatus:
        """How much of the spec the store already covers (one bulk scan)."""
        statuses = self._store.statuses()
        n_completed = 0
        n_failed = 0
        for _, key in self.cells():
            ok = statuses.get(key)
            if ok is None:
                continue
            if ok:
                n_completed += 1
            else:
                n_failed += 1
        return ProtocolStatus(
            n_cells=len(self._spec), n_completed=n_completed, n_failed=n_failed
        )

    def completed_records(self) -> list[dict]:
        """Stored records of this spec's completed cells, in cell order."""
        keys = [key for _, key in self.cells()]
        found = self._store.get_many(keys)
        return [
            found[key]
            for key in keys
            if key in found and found[key].get("error") is None
        ]

    def table(self, metric: str = "pmauc", scale: float = 1.0) -> ResultTable:
        """(benchmarks x detectors) table of a stored metric, seed-averaged."""
        from repro.protocol.analysis import records_to_table

        return records_to_table(self.completed_records(), metric, scale=scale)
