"""Command-line entry point: ``python -m repro.protocol``.

Four store-facing subcommands drive the reproduction:

* ``run``     — execute every pending cell of a spec into a results store
  (resumable: completed cells are skipped, so re-invoking after a kill
  finishes only the remainder);
* ``status``  — report how much of the spec the store already covers;
* ``report``  — fold the stored records into the paper's tables and
  Friedman / Bonferroni-Dunn / Bayesian summaries;
* ``compact`` — fold a sharded store's append-only segments into its
  sqlite index (see ``--store-format`` below).

The spec comes either from a JSON file (``--spec``) or a built-in preset
(``--preset paper`` / ``--preset quick`` / ``--preset extended`` — all nine
scenario families — / ``--preset stress`` — the adversarial stressors);
``spec`` files are produced with ``python -m repro.protocol spec --preset
paper > my_spec.json`` and edited freely.

Scaling knobs: ``--store-format sharded`` selects the segment+index
:class:`~repro.protocol.sharded_store.ShardedResultsStore` (the default
``auto`` recognises an existing sharded store by its layout, so the flag is
only needed on the first ``run``); ``--backend cluster`` executes cells on a
dask-style distributed cluster (``--cluster-address``) and **degrades to
local execution with a warning** when no cluster is reachable.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.protocol.analysis import analyze_records, render_report
from repro.protocol.backends import backend_names, make_backend
from repro.protocol.pipeline import ProtocolPipeline
from repro.protocol.sharded_store import ShardedResultsStore
from repro.protocol.spec import ProtocolSpec
from repro.protocol.store import ResultsStore, ResultsStoreProtocol

_PRESETS = {
    "paper": ProtocolSpec.paper,
    "quick": ProtocolSpec.quick,
    "extended": ProtocolSpec.extended,
    "stress": ProtocolSpec.stress,
}


def _add_spec_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--spec", type=Path, default=None, help="Path to a ProtocolSpec JSON file"
    )
    parser.add_argument(
        "--preset",
        choices=sorted(_PRESETS),
        default=None,
        help="Built-in spec preset (alternative to --spec)",
    )
    # Execution-mode overrides are part of every cell key, so they must be
    # available (and repeated) on run, status, AND report — otherwise a store
    # produced under an override would be invisible to the other subcommands.
    parser.add_argument(
        "--chunk-size", type=int, default=None, help="override spec chunk size"
    )
    parser.add_argument(
        "--batch-mode",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="override the spec's execution mode: --batch-mode for "
        "chunk-granular test-then-train (fast path), --no-batch-mode for "
        "exact per-instance semantics",
    )


def _load_spec(args: argparse.Namespace) -> ProtocolSpec:
    if args.spec is not None and args.preset is not None:
        raise SystemExit("pass either --spec or --preset, not both")
    if args.spec is not None:
        return ProtocolSpec.from_json(args.spec.read_text(encoding="utf-8"))
    if args.preset is None:
        # Never guess: the silent default used to be the full 1080-cell
        # paper spec, an expensive surprise for a forgotten flag.
        raise SystemExit(
            "pass --spec FILE or --preset "
            f"{{{','.join(sorted(_PRESETS))}}} to select the protocol"
        )
    return _PRESETS[args.preset]()


def _load_spec_with_overrides(args: argparse.Namespace) -> ProtocolSpec:
    spec = _load_spec(args)
    if args.chunk_size is not None:
        spec.chunk_size = args.chunk_size
        spec.__post_init__()
    if args.batch_mode is not None:
        spec.batch_mode = args.batch_mode
    return spec


def _add_store_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--store", type=Path, required=True, help="results directory")
    parser.add_argument(
        "--store-format",
        choices=("auto", "json", "sharded"),
        default="auto",
        help="results-store layout: 'json' = one atomic file per cell, "
        "'sharded' = append-only segments + sqlite index (use for runs "
        "beyond a few thousand cells; compact with the 'compact' "
        "subcommand).  'auto' (default) recognises an existing store by "
        "its layout and otherwise uses 'json'; an explicit format that "
        "contradicts an existing store's layout is refused rather than "
        "hiding its records",
    )


def _sharded_layout_present(path: Path) -> bool:
    """An index, or at least one actual segment file — an *empty*
    ``segments/`` directory alone is not proof (it could be damage from an
    aborted invocation against a JSON store)."""
    if (path / "index.sqlite").is_file():
        return True
    segments = path / "segments"
    return segments.is_dir() and any(segments.glob("seg-*.jsonl"))


def _json_records_present(path: Path) -> bool:
    return any(
        entry.name != "spec.json" and not entry.name.startswith(".tmp-")
        for entry in path.glob("*.json")
    )


def _open_store(args: argparse.Namespace) -> ResultsStoreProtocol:
    path: Path = args.store
    fmt: str = args.store_format
    has_sharded = _sharded_layout_present(path)
    has_json = _json_records_present(path)
    if fmt == "auto":
        if has_sharded:
            fmt = "sharded"
        elif has_json:
            fmt = "json"
        else:
            # A bare segments/ dir with no records on either side: a fresh
            # sharded store whose first write hasn't landed yet.
            fmt = "sharded" if (path / "segments").is_dir() else "json"
    elif fmt == "sharded" and has_json and not has_sharded:
        # Opening a populated JSON store as sharded would hide every
        # existing record and silently recompute the whole spec.
        raise SystemExit(
            f"{path} already holds a one-file-per-cell JSON store; opening "
            "it with --store-format sharded would hide every existing "
            "record.  Use --store-format auto/json, or point --store at a "
            "fresh directory."
        )
    elif fmt == "json" and has_sharded:
        raise SystemExit(
            f"{path} already holds a sharded store; opening it with "
            "--store-format json would hide every existing record.  Use "
            "--store-format auto/sharded, or point --store at a fresh "
            "directory."
        )
    if fmt == "sharded":
        return ShardedResultsStore(path)
    return ResultsStore(path)


def _make_backend(args: argparse.Namespace):
    if args.backend == "cluster":
        return make_backend("cluster", address=args.cluster_address)
    return args.backend


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.protocol",
        description="Run, resume, and analyse the paper's experimental protocol.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="execute pending cells into the store")
    _add_spec_arguments(run)
    _add_store_arguments(run)
    run.add_argument(
        "--workers", type=int, default=None, help="parallel worker count"
    )
    run.add_argument(
        "--backend",
        choices=tuple(backend_names()),
        default="process",
        help="execution backend (default: process).  'cluster' runs cells "
        "on a dask-style distributed cluster and degrades to local "
        "execution, with a warning, when no cluster is reachable",
    )
    run.add_argument(
        "--cluster-address",
        default=None,
        help="scheduler address for --backend cluster "
        "(e.g. tcp://host:8786; default: the client library's default)",
    )
    run.add_argument(
        "--max-cells",
        type=int,
        default=None,
        help="cap how many pending cells this invocation runs",
    )
    run.add_argument(
        "--no-retry-failed",
        action="store_true",
        help="do not re-run cells whose stored record is a failure",
    )
    run.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="persist a mid-cell runner checkpoint into the store at least "
        "every N instances; a killed run then resumes its in-flight cells "
        "from the checkpoints, bit-identical to an uninterrupted run "
        "(default: off, resume stays cell-granular)",
    )
    run.add_argument("--quiet", action="store_true", help="suppress per-cell lines")

    status = sub.add_parser("status", help="summarise store coverage of the spec")
    _add_spec_arguments(status)
    _add_store_arguments(status)

    report = sub.add_parser("report", help="tables + statistics from the store")
    _add_spec_arguments(report)
    _add_store_arguments(report)
    report.add_argument(
        "--metrics",
        nargs="+",
        default=["pmauc", "pmgm", "detection_recall"],
        help="metrics to tabulate (RunResult or drift-report fields)",
    )
    report.add_argument(
        "--control",
        default="RBM-IM",
        help="control detector for the post-hoc tests (default: RBM-IM)",
    )
    report.add_argument(
        "--rope", type=float, default=0.01, help="Bayesian signed test ROPE"
    )

    compact = sub.add_parser(
        "compact",
        help="fold a sharded store's segments into its sqlite index "
        "(atomic; run while no other process is writing)",
    )
    _add_store_arguments(compact)

    spec_cmd = sub.add_parser("spec", help="print a preset spec as editable JSON")
    spec_cmd.add_argument(
        "--preset", choices=sorted(_PRESETS), default="paper"
    )
    return parser


def _command_run(args: argparse.Namespace) -> int:
    spec = _load_spec_with_overrides(args)
    pipeline = ProtocolPipeline(spec, _open_store(args))

    def progress(cell_result) -> None:
        cell = cell_result.cell
        state = "ok" if cell_result.ok else "FAILED"
        print(
            f"[{state}] {cell.stream} / {cell.detector} / seed {cell.seed} "
            f"({cell_result.wall_time:.1f}s)",
            flush=True,
        )

    summary = pipeline.run(
        max_workers=args.workers,
        backend=_make_backend(args),
        progress=None if args.quiet else progress,
        retry_failed=not args.no_retry_failed,
        max_cells=args.max_cells,
        checkpoint_every=args.checkpoint_every,
    )
    print(summary.describe())
    status = pipeline.status()
    print(status.describe())
    return 0 if summary.n_failed == 0 else 1


def _command_status(args: argparse.Namespace) -> int:
    spec = _load_spec_with_overrides(args)
    pipeline = ProtocolPipeline(spec, _open_store(args))
    status = pipeline.status()
    print(f"spec {spec.name!r} in {args.store}")
    print(status.describe())
    statuses = pipeline.store.statuses()
    by_detector: dict[str, list[int]] = {}
    for cell, key in pipeline.cells():
        slot = by_detector.setdefault(cell.detector, [0, 0])
        slot[0] += 1
        if statuses.get(key):
            slot[1] += 1
    for detector, (total, done) in by_detector.items():
        print(f"  {detector:>10}: {done}/{total}")
    return 0 if status.done else 2


def _command_compact(args: argparse.Namespace) -> int:
    store = _open_store(args)
    if not isinstance(store, ShardedResultsStore):
        print(
            f"{args.store} is not a sharded store; nothing to compact "
            "(pass --store-format sharded on the first run to create one)",
            file=sys.stderr,
        )
        return 2
    index = store.compact()
    print(f"compacted {len(store)} records into {index}")
    return 0


def _command_report(args: argparse.Namespace) -> int:
    spec = _load_spec_with_overrides(args)
    pipeline = ProtocolPipeline(spec, _open_store(args))
    records = pipeline.completed_records()
    if not records:
        print("no completed cells in the store yet", file=sys.stderr)
        return 2
    analysis = analyze_records(
        records, metrics=tuple(args.metrics), control=args.control, rope=args.rope
    )
    print(render_report(analysis))
    return 0


def _command_spec(args: argparse.Namespace) -> int:
    print(_PRESETS[args.preset]().to_json())
    return 0


def main(argv: "list[str] | None" = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "run": _command_run,
        "status": _command_status,
        "report": _command_report,
        "compact": _command_compact,
        "spec": _command_spec,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
