"""Named, picklable factories for every detector in the repo.

The protocol pipeline fans cells out over process pools, so detector
construction must be expressible as module-level callables (lambdas and
closures cannot cross process boundaries).  This registry maps a stable
detector *name* — the string that appears in :class:`~repro.protocol.spec.
ProtocolSpec`, in stored result records, and in golden-test files — to a
module-level builder ``(n_features, n_classes) -> DriftDetector``.

The registry covers the full zoo: the ten standard error-rate detectors, the
two imbalance-aware baselines, the paper's RBM-IM, and the ``"none"``
detector-less baseline.  Default hyper-parameters follow
:func:`repro.evaluation.experiment.paper_detector_factories` where the two
overlap and each detector's published defaults otherwise.
"""

from __future__ import annotations

from typing import Callable

from repro.core.detector import RBMIM, RBMIMConfig
from repro.detectors import (
    ADWIN,
    DDM,
    DDM_OCI,
    ECDDWT,
    EDDM,
    FHDDM,
    HDDM_A,
    HDDM_W,
    WSTD,
    PageHinkley,
    PerfSim,
    RDDM,
    DriftDetector,
)

__all__ = ["DETECTOR_NAMES", "detector_factory", "build_detector"]

#: A detector builder receives (n_features, n_classes).
DetectorBuilder = Callable[[int, int], "DriftDetector | None"]


def _make_adwin(n_features: int, n_classes: int) -> DriftDetector:
    return ADWIN(delta=0.002)


def _make_ddm(n_features: int, n_classes: int) -> DriftDetector:
    return DDM()


def _make_eddm(n_features: int, n_classes: int) -> DriftDetector:
    return EDDM()


def _make_rddm(n_features: int, n_classes: int) -> DriftDetector:
    return RDDM()


def _make_hddm_a(n_features: int, n_classes: int) -> DriftDetector:
    return HDDM_A()


def _make_hddm_w(n_features: int, n_classes: int) -> DriftDetector:
    return HDDM_W()


def _make_fhddm(n_features: int, n_classes: int) -> DriftDetector:
    return FHDDM(window_size=100, delta=1e-6)


def _make_wstd(n_features: int, n_classes: int) -> DriftDetector:
    return WSTD(window_size=75, drift_significance=0.003)


def _make_page_hinkley(n_features: int, n_classes: int) -> DriftDetector:
    return PageHinkley()


def _make_ecdd(n_features: int, n_classes: int) -> DriftDetector:
    return ECDDWT()


def _make_perfsim(n_features: int, n_classes: int) -> DriftDetector:
    return PerfSim(n_classes=n_classes, batch_size=500, lambda_=0.2)


def _make_ddm_oci(n_features: int, n_classes: int) -> DriftDetector:
    return DDM_OCI(n_classes=n_classes)


def _make_rbm_im(n_features: int, n_classes: int) -> DriftDetector:
    config = RBMIMConfig(batch_size=50, seed=11)
    return RBMIM(n_features=n_features, n_classes=n_classes, config=config)


_REGISTRY: dict[str, DetectorBuilder | None] = {
    "ADWIN": _make_adwin,
    "DDM": _make_ddm,
    "EDDM": _make_eddm,
    "RDDM": _make_rddm,
    "HDDM-A": _make_hddm_a,
    "HDDM-W": _make_hddm_w,
    "FHDDM": _make_fhddm,
    "WSTD": _make_wstd,
    "PH": _make_page_hinkley,
    "ECDD": _make_ecdd,
    "PerfSim": _make_perfsim,
    "DDM-OCI": _make_ddm_oci,
    "RBM-IM": _make_rbm_im,
    "none": None,
}

#: All registered detector names, in registry order ("none" last).
DETECTOR_NAMES: tuple[str, ...] = tuple(_REGISTRY)


def detector_factory(name: str) -> DetectorBuilder | None:
    """The module-level builder registered under ``name`` (``None`` = baseline)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown detector {name!r}; expected one of {sorted(_REGISTRY)}"
        ) from None


def build_detector(
    name: str, n_features: int, n_classes: int
) -> "DriftDetector | None":
    """Instantiate the named detector for a stream's shape."""
    builder = detector_factory(name)
    if builder is None:
        return None
    return builder(n_features, n_classes)
