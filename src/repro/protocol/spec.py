"""Declarative description of the paper's experimental protocol.

A :class:`ProtocolSpec` names *what* to run — the artificial benchmark
families and class counts (Table I), the drift/imbalance scenarios (Section
IV), the detector line-up, and the seeds — together with the run parameters
that affect results (stream length, prequential window, chunking, drift
tolerance).  :meth:`ProtocolSpec.expand` turns the spec into the full list of
:class:`ProtocolCell`\\ s, one independent prequential run each.

Every cell has a **content-hashed key** (:meth:`ProtocolSpec.cell_key`):
the SHA-256 of the canonical JSON of the cell coordinates plus every
run-affecting spec field.  The key is what the results store files records
under, which gives the pipeline two properties for free:

* **resumability** — a re-invoked run recomputes only cells whose key has no
  stored record;
* **cache invalidation** — changing any run-affecting parameter (stream
  length, window, chunking, ...) changes every key, so stale records can
  never be mistaken for results of the new configuration.

Keys deliberately hash only primitive, explicitly-listed fields (never code
objects or reprs), so they are stable across process restarts and Python
upgrades.
"""

from __future__ import annotations

import functools
import hashlib
import json
from dataclasses import dataclass, fields
from typing import Callable, Sequence

from repro.streams.scenarios import (
    ARTIFICIAL_FAMILIES,
    ScenarioStream,
    scenario_global_drift,
    scenario_local_drift,
    scenario_role_switching,
)

from repro.protocol.registry import DETECTOR_NAMES

__all__ = [
    "KEY_VERSION",
    "DEFAULT_CLASSIFIER_LABEL",
    "ProtocolCell",
    "ProtocolSpec",
    "benchmark_name",
    "build_scenario",
    "callable_label",
]

#: Bumped whenever the semantics behind a cell key change incompatibly
#: (e.g. the prequential harness alters what a stored record means).
KEY_VERSION = 1

#: Identity of the default base classifier, as produced by
#: :func:`callable_label` for the paper's default factory.
DEFAULT_CLASSIFIER_LABEL = "repro.evaluation.experiment.default_classifier_factory"

_SCENARIOS = (1, 2, 3)


def callable_label(fn) -> str:
    """A restart-stable identity string for a (factory) callable.

    Module-level callables map to ``module.qualname``.  Lambdas, closures,
    and other unnameable callables fall back to ``repr`` — which embeds a
    memory address and therefore differs between processes.  That direction
    of instability is deliberate: an unnameable classifier factory means its
    cells are *recomputed* on resume rather than ever reusing records that
    might belong to a different classifier.
    """
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if module and qualname and "<locals>" not in qualname and "<lambda>" not in qualname:
        return f"{module}.{qualname}"
    return repr(fn)


def benchmark_name(family: str, n_classes: int, scenario: int) -> str:
    """The stream name a scenario builder will give this benchmark.

    Must stay in sync with the names assigned in
    :mod:`repro.streams.scenarios`; cheap to compute so keys never require
    building a stream.  Divergence is pinned by
    ``tests/protocol/test_spec.py::TestExpansion::
    test_benchmark_names_match_scenario_builders``.
    """
    base = f"scenario{scenario}-{family.capitalize()}{n_classes}"
    if scenario == 3:
        base += "-k1"  # scenario_local_drift drifts one (the smallest) class
    return base


def build_scenario(
    seed: int,
    family: str,
    n_classes: int,
    scenario: int,
    n_instances: int,
    n_drifts: int,
    max_imbalance_ratio: float,
) -> ScenarioStream:
    """Build the scenario stream for one cell (module-level, hence picklable)."""
    if scenario == 1:
        return scenario_global_drift(
            family=family,
            n_classes=n_classes,
            n_instances=n_instances,
            n_drifts=n_drifts,
            max_imbalance_ratio=max_imbalance_ratio,
            seed=seed,
        )
    if scenario == 2:
        return scenario_role_switching(
            family=family,
            n_classes=n_classes,
            n_instances=n_instances,
            n_drifts=n_drifts,
            max_imbalance_ratio=max_imbalance_ratio,
            seed=seed,
        )
    if scenario == 3:
        return scenario_local_drift(
            family=family,
            n_classes=n_classes,
            n_instances=n_instances,
            max_imbalance_ratio=max_imbalance_ratio,
            seed=seed,
        )
    raise ValueError(f"unknown scenario {scenario!r}; expected one of {_SCENARIOS}")


@dataclass(frozen=True)
class ProtocolCell:
    """Coordinates of one experiment: (benchmark, scenario, detector, seed)."""

    family: str
    n_classes: int
    scenario: int
    detector: str
    seed: int

    @property
    def benchmark(self) -> str:
        return benchmark_name(self.family, self.n_classes, self.scenario)

    def to_dict(self) -> dict:
        return {
            "family": self.family,
            "n_classes": self.n_classes,
            "scenario": self.scenario,
            "detector": self.detector,
            "seed": self.seed,
        }


@dataclass
class ProtocolSpec:
    """The full Section IV/V protocol as data.

    The default field values reproduce the paper's setup: 12 artificial
    benchmarks (four families x {5, 10, 20} classes), scenarios 1-3, the six
    compared detectors, 20 000-instance streams with three drifts and a
    maximum imbalance ratio of 100, and the 1000-instance prequential window.
    """

    name: str = "paper"
    families: tuple[str, ...] = ("agrawal", "hyperplane", "rbf", "randomtree")
    class_counts: tuple[int, ...] = (5, 10, 20)
    scenarios: tuple[int, ...] = (1, 2, 3)
    detectors: tuple[str, ...] = (
        "WSTD",
        "RDDM",
        "FHDDM",
        "PerfSim",
        "DDM-OCI",
        "RBM-IM",
    )
    seeds: tuple[int, ...] = (0, 1, 2, 3, 4)
    n_instances: int = 20_000
    n_drifts: int = 3
    max_imbalance_ratio: float = 100.0
    window_size: int = 1_000
    pretrain_size: int = 200
    chunk_size: int = 512
    batch_mode: bool = False
    drift_tolerance: int = 2_000

    def __post_init__(self) -> None:
        self.families = tuple(str(f).lower() for f in self.families)
        self.class_counts = tuple(int(c) for c in self.class_counts)
        self.scenarios = tuple(int(s) for s in self.scenarios)
        self.detectors = tuple(str(d) for d in self.detectors)
        self.seeds = tuple(int(s) for s in self.seeds)
        for family in self.families:
            if family not in ARTIFICIAL_FAMILIES:
                raise ValueError(
                    f"unknown family {family!r}; expected one of "
                    f"{sorted(ARTIFICIAL_FAMILIES)}"
                )
        for scenario in self.scenarios:
            if scenario not in _SCENARIOS:
                raise ValueError(f"scenarios must be among {_SCENARIOS}")
        for detector in self.detectors:
            if detector not in DETECTOR_NAMES:
                raise ValueError(
                    f"unknown detector {detector!r}; expected one of "
                    f"{sorted(DETECTOR_NAMES)}"
                )
        if not (self.families and self.class_counts and self.scenarios
                and self.detectors and self.seeds):
            raise ValueError("spec must name at least one cell on every axis")
        if self.n_instances < 1 or self.n_drifts < 0:
            raise ValueError("n_instances must be >= 1 and n_drifts >= 0")
        if min(self.class_counts) < 2:
            raise ValueError("class_counts must all be >= 2")

    # ------------------------------------------------------------ expansion
    def expand(self) -> list[ProtocolCell]:
        """Every cell of the protocol, in deterministic order."""
        return [
            ProtocolCell(
                family=family,
                n_classes=n_classes,
                scenario=scenario,
                detector=detector,
                seed=seed,
            )
            for scenario in self.scenarios
            for family in self.families
            for n_classes in self.class_counts
            for detector in self.detectors
            for seed in self.seeds
        ]

    def __len__(self) -> int:
        return (
            len(self.families)
            * len(self.class_counts)
            * len(self.scenarios)
            * len(self.detectors)
            * len(self.seeds)
        )

    def benchmarks(self) -> list[str]:
        """The benchmark names the spec expands to (datasets of the tables)."""
        return [
            benchmark_name(family, n_classes, scenario)
            for scenario in self.scenarios
            for family in self.families
            for n_classes in self.class_counts
        ]

    def stream_factory(self, cell: ProtocolCell) -> Callable[[int], ScenarioStream]:
        """Picklable ``seed -> ScenarioStream`` factory for one cell."""
        return functools.partial(
            build_scenario,
            family=cell.family,
            n_classes=cell.n_classes,
            scenario=cell.scenario,
            n_instances=self.n_instances,
            n_drifts=self.n_drifts,
            max_imbalance_ratio=self.max_imbalance_ratio,
        )

    # ------------------------------------------------------------ cell keys
    def run_parameters(self, classifier: str = DEFAULT_CLASSIFIER_LABEL) -> dict:
        """Every field that affects a cell's result (hashed into its key)."""
        return {
            "n_instances": self.n_instances,
            "n_drifts": self.n_drifts,
            "max_imbalance_ratio": self.max_imbalance_ratio,
            "window_size": self.window_size,
            "pretrain_size": self.pretrain_size,
            "chunk_size": self.chunk_size,
            "batch_mode": self.batch_mode,
            "drift_tolerance": self.drift_tolerance,
            "classifier": classifier,
        }

    def cell_key(
        self, cell: ProtocolCell, classifier: str = DEFAULT_CLASSIFIER_LABEL
    ) -> str:
        """Stable content-hashed key for one cell.

        The key embeds a short human-readable slug (benchmark, detector,
        seed) followed by 16 hex characters of the SHA-256 over the canonical
        JSON of the cell coordinates, the run parameters (including the
        ``classifier`` identity, so swapping the base classifier can never
        reuse a stale cache), and :data:`KEY_VERSION`.
        """
        payload = {
            "version": KEY_VERSION,
            "cell": cell.to_dict(),
            "run": self.run_parameters(classifier),
        }
        canonical = json.dumps(
            payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
        )
        digest = hashlib.sha256(canonical.encode("ascii")).hexdigest()
        slug = f"{cell.benchmark}.{cell.detector}.s{cell.seed}"
        return f"{slug}.{digest[:16]}"

    # --------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        return {
            spec_field.name: getattr(self, spec_field.name)
            for spec_field in fields(self)
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "ProtocolSpec":
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown spec fields: {sorted(unknown)}")
        return cls(**data)

    @classmethod
    def from_json(cls, text: str) -> "ProtocolSpec":
        return cls.from_dict(json.loads(text))

    # --------------------------------------------------------------- presets
    @classmethod
    def paper(cls, seeds: Sequence[int] = (0, 1, 2, 3, 4)) -> "ProtocolSpec":
        """The full reproduction: 36 benchmarks x 6 detectors x seeds."""
        return cls(name="paper", seeds=tuple(seeds))

    @classmethod
    def quick(cls) -> "ProtocolSpec":
        """A 2-cell smoke spec (seconds to run) for CI and demos."""
        return cls(
            name="quick",
            families=("rbf",),
            class_counts=(5,),
            scenarios=(1,),
            detectors=("DDM", "RBM-IM"),
            seeds=(0,),
            n_instances=600,
            n_drifts=1,
            max_imbalance_ratio=20.0,
            window_size=200,
            pretrain_size=100,
            chunk_size=128,
            drift_tolerance=300,
        )
