"""Fold stored protocol records into the paper's tables and statistics.

The analysis stage is a pure function of the records persisted by the
pipeline: it never re-runs experiments.  Records are grouped into
(benchmark x detector) :class:`~repro.evaluation.results.ResultTable`\\ s
(seed-averaged), ranked, and — when the matrix is large enough — passed
through the Friedman test, the Bonferroni-Dunn post-hoc comparison against a
control detector (Figs. 4-5), and pairwise Bayesian signed tests against the
control (Figs. 6-7).  Tests whose preconditions are not met (fewer than
three detectors, a single benchmark, missing control) are skipped with a
note rather than raising, so partial stores still produce a useful report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.evaluation.results import ResultTable
from repro.evaluation.stats import (
    BayesianSignedTestResult,
    BonferroniDunnResult,
    FriedmanResult,
    bayesian_signed_test,
    bonferroni_dunn_test,
    friedman_test,
)

__all__ = [
    "DEFAULT_METRICS",
    "records_to_table",
    "detection_table",
    "MetricAnalysis",
    "ProtocolAnalysis",
    "analyze_records",
    "render_report",
]

#: RunResult metrics folded into tables by default.
DEFAULT_METRICS = ("pmauc", "pmgm", "accuracy", "kappa")


def records_to_table(
    records: Iterable[dict], metric: str = "pmauc", scale: float = 1.0
) -> ResultTable:
    """Seed-averaged (benchmark x detector) table of one stored metric.

    ``metric`` is either a top-level record field (``pmauc``, ``kappa``, ...)
    or a ``drift_report`` field (``detection_recall``, ``mean_delay``,
    ``n_false_alarms``).  Records without the metric are skipped.
    """
    values: dict[tuple[str, str], list[float]] = {}
    for record in records:
        if record.get("error") is not None:
            continue
        if metric in record:
            value = record[metric]
        elif metric in (record.get("drift_report") or {}):
            value = record["drift_report"][metric]
        else:
            continue
        value = float(value)
        if np.isnan(value):
            continue
        dataset = record.get("benchmark", record.get("stream", "?"))
        values.setdefault((dataset, record["detector"]), []).append(scale * value)
    table = ResultTable(metric_name=metric)
    for (dataset, method), series in values.items():
        table.add(dataset, method, float(np.mean(series)))
    return table


def detection_table(records: Iterable[dict], metric: str = "detection_recall") -> ResultTable:
    """Convenience wrapper for drift-report metrics (recall/delay/false alarms)."""
    return records_to_table(records, metric)


@dataclass
class MetricAnalysis:
    """Everything derived from one metric's (benchmark x detector) table."""

    metric: str
    table: ResultTable
    ranks: dict[str, float]
    higher_is_better: bool = True
    friedman: FriedmanResult | None = None
    bonferroni_dunn: BonferroniDunnResult | None = None
    bayesian: dict[str, BayesianSignedTestResult] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)


@dataclass
class ProtocolAnalysis:
    """The full report: one :class:`MetricAnalysis` per metric."""

    control: str | None
    metrics: dict[str, MetricAnalysis] = field(default_factory=dict)


def _complete_matrix(table: ResultTable) -> tuple[np.ndarray, list[str]]:
    """Rows with no missing cells, plus the method (column) names."""
    matrix = table.to_matrix()
    if matrix.size == 0:
        return matrix, table.methods
    complete = ~np.isnan(matrix).any(axis=1)
    return matrix[complete], table.methods


def analyze_metric(
    records: Sequence[dict],
    metric: str,
    control: str | None = None,
    rope: float = 0.01,
    higher_is_better: bool = True,
) -> MetricAnalysis:
    """Table + rank + significance analysis for one metric."""
    table = records_to_table(records, metric)
    analysis = MetricAnalysis(
        metric=metric,
        table=table,
        ranks=table.ranks(higher_is_better),
        higher_is_better=higher_is_better,
    )
    matrix, methods = _complete_matrix(table)
    n_datasets = matrix.shape[0] if matrix.ndim == 2 else 0
    n_methods = len(methods)

    if n_methods >= 3 and n_datasets >= 2:
        with np.errstate(divide="ignore", invalid="ignore"):
            friedman = friedman_test(matrix, higher_is_better)
        if np.isnan(friedman.p_value):
            analysis.notes.append(
                "Friedman test degenerate: every detector tied on every benchmark"
            )
        else:
            analysis.friedman = friedman
    else:
        analysis.notes.append(
            "Friedman test skipped: needs >= 3 detectors and >= 2 complete "
            f"benchmarks (have {n_methods} and {n_datasets})"
        )

    if control is not None and control in methods:
        if n_methods >= 2 and n_datasets >= 2:
            analysis.bonferroni_dunn = bonferroni_dunn_test(
                matrix, methods, control, higher_is_better=higher_is_better
            )
        else:
            analysis.notes.append(
                "Bonferroni-Dunn skipped: needs >= 2 detectors and >= 2 "
                f"complete benchmarks (have {n_methods} and {n_datasets})"
            )
        control_index = methods.index(control)
        # Orient scores so "left" always means "control practically better",
        # also for lower-is-better metrics such as mean_delay.
        oriented = matrix if higher_is_better else -matrix
        for j, method in enumerate(methods):
            if method == control or n_datasets == 0:
                continue
            analysis.bayesian[method] = bayesian_signed_test(
                oriented[:, control_index], oriented[:, j], rope=rope
            )
    elif control is not None:
        analysis.notes.append(
            f"control {control!r} has no complete results; post-hoc tests skipped"
        )
    return analysis


def analyze_records(
    records: Sequence[dict],
    metrics: Sequence[str] = DEFAULT_METRICS,
    control: str | None = "RBM-IM",
    rope: float = 0.01,
) -> ProtocolAnalysis:
    """Fold records into per-metric tables, ranks, and significance tests."""
    records = list(records)
    analysis = ProtocolAnalysis(control=control)
    for metric in metrics:
        higher_is_better = metric not in ("mean_delay", "n_false_alarms")
        analysis.metrics[metric] = analyze_metric(
            records,
            metric,
            control=control,
            rope=rope,
            higher_is_better=higher_is_better,
        )
    return analysis


def render_report(analysis: ProtocolAnalysis, precision: int = 3) -> str:
    """Plain-text report: one table + statistics block per metric."""
    blocks: list[str] = []
    for metric, item in analysis.metrics.items():
        lines = [f"== {metric} =="]
        if not item.table.datasets:
            lines.append("(no completed results)")
            blocks.append("\n".join(lines))
            continue
        lines.append(
            item.table.to_text(
                precision=precision, higher_is_better=item.higher_is_better
            )
        )
        if item.friedman is not None:
            verdict = "significant" if item.friedman.significant else "not significant"
            lines.append(
                f"Friedman: chi2={item.friedman.statistic:.3f} "
                f"p={item.friedman.p_value:.4f} ({verdict} at 0.05)"
            )
        if item.bonferroni_dunn is not None:
            bd = item.bonferroni_dunn
            worse = ", ".join(bd.significantly_worse) or "none"
            lines.append(
                f"Bonferroni-Dunn vs {bd.control}: CD={bd.critical_distance:.3f}; "
                f"significantly worse: {worse}"
            )
        for method, bayes in item.bayesian.items():
            lines.append(
                f"Bayesian signed ({analysis.control} vs {method}): "
                f"p_left={bayes.p_left:.3f} p_rope={bayes.p_rope:.3f} "
                f"p_right={bayes.p_right:.3f} -> {bayes.winner}"
            )
        for note in item.notes:
            lines.append(f"note: {note}")
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)
