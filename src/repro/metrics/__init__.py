"""Streaming evaluation metrics: pmAUC, pmG-mean, confusion statistics, drift scoring."""

from repro.metrics.confusion import StreamingConfusionMatrix
from repro.metrics.drift_eval import DriftDetectionReport, evaluate_detections
from repro.metrics.gmean import PrequentialGMean
from repro.metrics.pmauc import PrequentialMultiClassAUC, auc_from_scores
from repro.metrics.prequential import MetricSnapshot, PrequentialEvaluator

__all__ = [
    "StreamingConfusionMatrix",
    "DriftDetectionReport",
    "evaluate_detections",
    "PrequentialGMean",
    "PrequentialMultiClassAUC",
    "auc_from_scores",
    "MetricSnapshot",
    "PrequentialEvaluator",
]
