"""Drift-detection quality metrics.

Given the ground-truth drift positions of a synthetic stream and the positions
at which a detector fired, these helpers compute detection recall, mean
detection delay, and false-alarm counts — the standard way of scoring drift
detectors directly (complementing the classifier-performance view of the
paper's Table III).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["DriftDetectionReport", "evaluate_detections"]


@dataclass(frozen=True)
class DriftDetectionReport:
    """Summary of how well detections line up with ground-truth drifts.

    Attributes
    ----------
    n_true_drifts:
        Number of ground-truth drift points.
    n_detections:
        Total number of alarms raised by the detector.
    n_detected:
        Ground-truth drifts matched by at least one alarm inside the
        tolerance window.
    n_false_alarms:
        Alarms that do not fall inside any drift's tolerance window.
    mean_delay:
        Mean distance (in instances) from a drift to its first matching
        alarm; NaN when nothing was detected.
    detection_recall:
        ``n_detected / n_true_drifts`` (1.0 when there are no true drifts).
    """

    n_true_drifts: int
    n_detections: int
    n_detected: int
    n_false_alarms: int
    mean_delay: float
    detection_recall: float


def evaluate_detections(
    true_drifts: Sequence[int],
    detections: Sequence[int],
    tolerance: int = 2_000,
) -> DriftDetectionReport:
    """Match detector alarms to ground-truth drift positions.

    A drift at position ``p`` counts as detected if some alarm lies in
    ``[p, p + tolerance]``; the delay is the distance to the earliest such
    alarm.  Alarms that match no drift window are false alarms.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    true_drifts = sorted(int(p) for p in true_drifts)
    detections = sorted(int(d) for d in detections)

    delays: list[float] = []
    matched_alarms: set[int] = set()
    n_detected = 0
    for drift in true_drifts:
        window_end = drift + tolerance
        first_match = None
        for alarm in detections:
            if drift <= alarm <= window_end:
                first_match = alarm
                break
        if first_match is not None:
            n_detected += 1
            delays.append(float(first_match - drift))
            matched_alarms.update(
                alarm for alarm in detections if drift <= alarm <= window_end
            )

    n_false_alarms = sum(1 for alarm in detections if alarm not in matched_alarms)
    mean_delay = float(np.mean(delays)) if delays else float("nan")
    recall = 1.0 if not true_drifts else n_detected / len(true_drifts)
    return DriftDetectionReport(
        n_true_drifts=len(true_drifts),
        n_detections=len(detections),
        n_detected=n_detected,
        n_false_alarms=n_false_alarms,
        mean_delay=mean_delay,
        detection_recall=recall,
    )
