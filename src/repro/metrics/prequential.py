"""Prequential (test-then-train) metric aggregation.

:class:`PrequentialEvaluator` bundles the paper's two headline metrics
(pmAUC, pmGM) plus accuracy and Kappa over a sliding window, and records the
metric trajectory so benchmark harnesses can report both final averages and
time series.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.snapshot import Snapshotable, register_dataclass
from repro.metrics.confusion import StreamingConfusionMatrix
from repro.metrics.gmean import PrequentialGMean
from repro.metrics.pmauc import PrequentialMultiClassAUC

__all__ = ["MetricSnapshot", "PrequentialEvaluator"]


@register_dataclass
@dataclass(frozen=True)
class MetricSnapshot:
    """Windowed metric values at a given stream position."""

    position: int
    pmauc: float
    pmgm: float
    accuracy: float
    kappa: float


@dataclass
class PrequentialEvaluator(Snapshotable):
    """Test-then-train metric tracker with periodic snapshots.

    Parameters
    ----------
    n_classes:
        Number of classes in the stream.
    window_size:
        Sliding-window length for all windowed metrics (1000 in the paper).
    snapshot_every:
        Distance (in instances) between recorded metric snapshots.
    """

    n_classes: int
    window_size: int = 1000
    snapshot_every: int = 500
    _auc: PrequentialMultiClassAUC = field(init=False)
    _gmean: PrequentialGMean = field(init=False)
    _confusion: StreamingConfusionMatrix = field(init=False)
    _snapshots: list[MetricSnapshot] = field(init=False, default_factory=list)
    _n_seen: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self._auc = PrequentialMultiClassAUC(self.n_classes, self.window_size)
        self._gmean = PrequentialGMean(self.n_classes, self.window_size)
        self._confusion = StreamingConfusionMatrix(
            self.n_classes, window_size=self.window_size
        )

    # ---------------------------------------------------------------- state
    @property
    def n_seen(self) -> int:
        return self._n_seen

    @property
    def snapshots(self) -> list[MetricSnapshot]:
        return list(self._snapshots)

    def reset(self) -> None:
        self._auc.reset()
        self._gmean.reset()
        self._confusion.reset()
        self._snapshots.clear()
        self._n_seen = 0

    # -------------------------------------------------------------- updates
    def update(self, scores: np.ndarray, y_true: int, y_pred: int) -> None:
        """Record one test-then-train step (scores, truth, prediction)."""
        self._auc.update(scores, y_true)
        self._gmean.update(y_true, y_pred)
        self._confusion.update(y_true, y_pred)
        self._n_seen += 1
        if self._n_seen % self.snapshot_every == 0:
            self._snapshots.append(self.metric_snapshot())

    def update_batch(
        self, scores: np.ndarray, y_true: np.ndarray, y_pred: np.ndarray
    ) -> None:
        """Record a batch of steps, firing snapshots at the exact positions
        (and with the exact window contents) the per-instance path would."""
        scores = np.atleast_2d(np.asarray(scores, dtype=np.float64))
        y_true = np.asarray(y_true, dtype=np.int64)
        y_pred = np.asarray(y_pred, dtype=np.int64)
        n = y_true.shape[0]
        start = 0
        while start < n:
            to_snapshot = self.snapshot_every - (self._n_seen % self.snapshot_every)
            end = min(n, start + to_snapshot)
            self._auc.update_batch(scores[start:end], y_true[start:end])
            self._gmean.update_batch(y_true[start:end], y_pred[start:end])
            self._confusion.update_batch(y_true[start:end], y_pred[start:end])
            self._n_seen += end - start
            if self._n_seen % self.snapshot_every == 0:
                self._snapshots.append(self.metric_snapshot())
            start = end

    # ------------------------------------------------------------- readouts
    def pmauc(self) -> float:
        return self._auc.value()

    def pmgm(self) -> float:
        return self._gmean.value()

    def accuracy(self) -> float:
        return self._confusion.accuracy()

    def kappa(self) -> float:
        return self._confusion.kappa()

    def metric_snapshot(self) -> MetricSnapshot:
        """Windowed metric readouts at the current position."""
        return MetricSnapshot(
            position=self._n_seen,
            pmauc=self.pmauc(),
            pmgm=self.pmgm(),
            accuracy=self.accuracy(),
            kappa=self.kappa(),
        )

    def mean_pmauc(self) -> float:
        """Average of the pmAUC snapshots (the value reported in Table III)."""
        if not self._snapshots:
            return self.pmauc()
        return float(np.mean([snap.pmauc for snap in self._snapshots]))

    def mean_pmgm(self) -> float:
        """Average of the pmGM snapshots (the value reported in Table III)."""
        if not self._snapshots:
            return self.pmgm()
        return float(np.mean([snap.pmgm for snap in self._snapshots]))
