"""Prequential multi-class AUC (pmAUC).

Wang & Minku's prequential AUC generalised to multiple classes: over a sliding
window of recent prediction scores, a one-vs-rest AUC is computed for every
class with both positive and negative examples in the window, and the
per-class AUCs are averaged.  This is the primary skew-insensitive metric of
the paper's evaluation (Table III, Figs. 8-9).
"""

from __future__ import annotations

import numpy as np

from repro.core.snapshot import Snapshotable

__all__ = ["auc_from_scores", "PrequentialMultiClassAUC"]


def auc_from_scores(scores: np.ndarray, is_positive: np.ndarray) -> float:
    """Area under the ROC curve from scores and binary membership flags.

    Uses the rank-sum (Mann-Whitney) formulation with midrank tie handling.
    Returns NaN when either class is absent.
    """
    scores = np.asarray(scores, dtype=np.float64)
    is_positive = np.asarray(is_positive, dtype=bool)
    n_positive = int(is_positive.sum())
    n_negative = int((~is_positive).sum())
    if n_positive == 0 or n_negative == 0:
        return float("nan")
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty_like(scores)
    sorted_scores = scores[order]
    # Midranks for ties, vectorized: tied runs share the mean of the 1-based
    # ranks they span ((start + end + 2) / 2 for a run [start, end]).
    n = sorted_scores.shape[0]
    run_starts = np.flatnonzero(
        np.concatenate(([True], sorted_scores[1:] != sorted_scores[:-1]))
    )
    run_lengths = np.diff(np.concatenate((run_starts, [n])))
    midranks = (2 * run_starts + run_lengths + 1) / 2.0
    ranks[order] = np.repeat(midranks, run_lengths)
    rank_sum_positive = float(ranks[is_positive].sum())
    u_statistic = rank_sum_positive - n_positive * (n_positive + 1) / 2.0
    return float(u_statistic / (n_positive * n_negative))


class PrequentialMultiClassAUC(Snapshotable):
    """Sliding-window multi-class (one-vs-rest averaged) AUC.

    Parameters
    ----------
    n_classes:
        Number of classes.
    window_size:
        Number of most recent (scores, label) pairs kept for the computation
        (the paper uses 1000).
    """

    def __init__(self, n_classes: int, window_size: int = 1000) -> None:
        if n_classes < 2:
            raise ValueError("n_classes must be >= 2")
        if window_size < 10:
            raise ValueError("window_size must be >= 10")
        self._n_classes = n_classes
        # Ring buffer instead of a deque of tuples: the AUC is rank-based, so
        # the in-window ordering is irrelevant and slots can be overwritten in
        # place — no per-update allocation, no per-readout vstack.
        self._window_size = window_size
        self._scores = np.empty((window_size, n_classes), dtype=np.float64)
        self._labels = np.empty(window_size, dtype=np.int64)
        self._cursor = 0
        self._count = 0

    @property
    def window_size(self) -> int:
        return self._window_size

    def reset(self) -> None:
        self._cursor = 0
        self._count = 0

    def update(self, scores: np.ndarray, y_true: int) -> None:
        """Add one prediction: per-class scores and the true label."""
        scores = np.asarray(scores, dtype=np.float64)
        if scores.shape[0] != self._n_classes:
            raise ValueError(
                f"expected {self._n_classes} scores, got {scores.shape[0]}"
            )
        if not 0 <= int(y_true) < self._n_classes:
            raise ValueError("label out of range")
        self._scores[self._cursor] = scores
        self._labels[self._cursor] = int(y_true)
        self._cursor = (self._cursor + 1) % self._window_size
        self._count = min(self._count + 1, self._window_size)

    def update_batch(self, scores: np.ndarray, y_true: np.ndarray) -> None:
        """Add a batch of predictions; identical to repeated :meth:`update`."""
        scores = np.atleast_2d(np.asarray(scores, dtype=np.float64))
        y_true = np.asarray(y_true, dtype=np.int64)
        if scores.shape[1] != self._n_classes:
            raise ValueError(
                f"expected {self._n_classes} scores per row, got {scores.shape[1]}"
            )
        n = y_true.shape[0]
        if n and (y_true.min() < 0 or y_true.max() >= self._n_classes):
            raise ValueError("label out of range")
        if n >= self._window_size:
            # Only the last window_size rows survive.
            scores = scores[n - self._window_size :]
            y_true = y_true[n - self._window_size :]
            n = self._window_size
        first = min(n, self._window_size - self._cursor)
        self._scores[self._cursor : self._cursor + first] = scores[:first]
        self._labels[self._cursor : self._cursor + first] = y_true[:first]
        remainder = n - first
        if remainder:
            self._scores[:remainder] = scores[first:]
            self._labels[:remainder] = y_true[first:]
        self._cursor = (self._cursor + n) % self._window_size
        self._count = min(self._count + n, self._window_size)

    def value(self) -> float:
        """Current pmAUC over the window (NaN-free: returns 0.5 when empty)."""
        if self._count == 0:
            return 0.5
        all_scores = self._scores[: self._count]
        labels = self._labels[: self._count]
        per_class = []
        for label in range(self._n_classes):
            positives = labels == label
            auc = auc_from_scores(all_scores[:, label], positives)
            if not np.isnan(auc):
                per_class.append(auc)
        if not per_class:
            return 0.5
        return float(np.mean(per_class))
