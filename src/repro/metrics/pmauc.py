"""Prequential multi-class AUC (pmAUC).

Wang & Minku's prequential AUC generalised to multiple classes: over a sliding
window of recent prediction scores, a one-vs-rest AUC is computed for every
class with both positive and negative examples in the window, and the
per-class AUCs are averaged.  This is the primary skew-insensitive metric of
the paper's evaluation (Table III, Figs. 8-9).
"""

from __future__ import annotations

from collections import deque

import numpy as np

__all__ = ["auc_from_scores", "PrequentialMultiClassAUC"]


def auc_from_scores(scores: np.ndarray, is_positive: np.ndarray) -> float:
    """Area under the ROC curve from scores and binary membership flags.

    Uses the rank-sum (Mann-Whitney) formulation with midrank tie handling.
    Returns NaN when either class is absent.
    """
    scores = np.asarray(scores, dtype=np.float64)
    is_positive = np.asarray(is_positive, dtype=bool)
    n_positive = int(is_positive.sum())
    n_negative = int((~is_positive).sum())
    if n_positive == 0 or n_negative == 0:
        return float("nan")
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty_like(scores)
    sorted_scores = scores[order]
    # Midranks for ties.
    ranks_sorted = np.arange(1, scores.shape[0] + 1, dtype=np.float64)
    i = 0
    while i < sorted_scores.shape[0]:
        j = i
        while j + 1 < sorted_scores.shape[0] and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks_sorted[i : j + 1] = (i + j + 2) / 2.0
        i = j + 1
    ranks[order] = ranks_sorted
    rank_sum_positive = float(ranks[is_positive].sum())
    u_statistic = rank_sum_positive - n_positive * (n_positive + 1) / 2.0
    return float(u_statistic / (n_positive * n_negative))


class PrequentialMultiClassAUC:
    """Sliding-window multi-class (one-vs-rest averaged) AUC.

    Parameters
    ----------
    n_classes:
        Number of classes.
    window_size:
        Number of most recent (scores, label) pairs kept for the computation
        (the paper uses 1000).
    """

    def __init__(self, n_classes: int, window_size: int = 1000) -> None:
        if n_classes < 2:
            raise ValueError("n_classes must be >= 2")
        if window_size < 10:
            raise ValueError("window_size must be >= 10")
        self._n_classes = n_classes
        self._window: deque[tuple[np.ndarray, int]] = deque(maxlen=window_size)

    @property
    def window_size(self) -> int:
        return self._window.maxlen or 0

    def reset(self) -> None:
        self._window.clear()

    def update(self, scores: np.ndarray, y_true: int) -> None:
        """Add one prediction: per-class scores and the true label."""
        scores = np.asarray(scores, dtype=np.float64)
        if scores.shape[0] != self._n_classes:
            raise ValueError(
                f"expected {self._n_classes} scores, got {scores.shape[0]}"
            )
        if not 0 <= int(y_true) < self._n_classes:
            raise ValueError("label out of range")
        self._window.append((scores, int(y_true)))

    def value(self) -> float:
        """Current pmAUC over the window (NaN-free: returns 0.5 when empty)."""
        if not self._window:
            return 0.5
        all_scores = np.vstack([scores for scores, _ in self._window])
        labels = np.asarray([label for _, label in self._window])
        per_class = []
        for label in range(self._n_classes):
            positives = labels == label
            auc = auc_from_scores(all_scores[:, label], positives)
            if not np.isnan(auc):
                per_class.append(auc)
        if not per_class:
            return 0.5
        return float(np.mean(per_class))
