"""Streaming confusion matrix and derived per-class statistics.

Maintains exact counts (optionally over a sliding window) of true vs predicted
labels for a multi-class stream.  All the imbalance-aware metrics in
:mod:`repro.metrics` (per-class recall, G-mean, Kappa) are derived from it.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.core.snapshot import Snapshotable

__all__ = ["StreamingConfusionMatrix"]


class StreamingConfusionMatrix(Snapshotable):
    """Confusion matrix over the full stream or a sliding window.

    Parameters
    ----------
    n_classes:
        Number of classes.
    window_size:
        When given, only the most recent ``window_size`` predictions
        contribute to the counts (prequential windowed evaluation); ``None``
        accumulates over the whole stream.
    """

    def __init__(self, n_classes: int, window_size: int | None = None) -> None:
        if n_classes < 2:
            raise ValueError("n_classes must be >= 2")
        if window_size is not None and window_size < 1:
            raise ValueError("window_size must be >= 1 or None")
        self._n_classes = n_classes
        self._window_size = window_size
        self._matrix = np.zeros((n_classes, n_classes), dtype=np.float64)
        # The window stores flat cell codes ``y_true * n_classes + y_pred``
        # (one int per prediction) so batch eviction reduces to a bincount.
        self._window: deque[int] | None = (
            deque(maxlen=window_size) if window_size is not None else None
        )
        self._total = 0

    @property
    def n_classes(self) -> int:
        return self._n_classes

    @property
    def total(self) -> int:
        """Number of predictions currently reflected in the matrix."""
        return int(self._matrix.sum())

    @property
    def n_seen(self) -> int:
        """Number of predictions observed since creation (ignores the window)."""
        return self._total

    @property
    def matrix(self) -> np.ndarray:
        return self._matrix.copy()

    def reset(self) -> None:
        self._matrix[:] = 0.0
        if self._window is not None:
            self._window.clear()
        self._total = 0

    def update(self, y_true: int, y_pred: int) -> None:
        y_true, y_pred = int(y_true), int(y_pred)
        if not (0 <= y_true < self._n_classes and 0 <= y_pred < self._n_classes):
            raise ValueError("label out of range")
        flat = self._matrix.reshape(-1)
        code = y_true * self._n_classes + y_pred
        if self._window is not None and len(self._window) == self._window.maxlen:
            flat[self._window[0]] -= 1.0
        if self._window is not None:
            self._window.append(code)
        flat[code] += 1.0
        self._total += 1

    def update_batch(self, y_true: np.ndarray, y_pred: np.ndarray) -> None:
        """Record a batch of predictions; identical to repeated :meth:`update`."""
        y_true = np.asarray(y_true, dtype=np.int64)
        y_pred = np.asarray(y_pred, dtype=np.int64)
        n = y_true.shape[0]
        if n == 0:
            return
        for labels in (y_true, y_pred):
            if labels.min() < 0 or labels.max() >= self._n_classes:
                raise ValueError("label out of range")
        n_cells = self._n_classes * self._n_classes
        codes = y_true * self._n_classes + y_pred
        flat = self._matrix.reshape(-1)
        if self._window is not None:
            # Appending n codes to a deque of maxlen m keeps (old + new)[-m:];
            # everything else must be subtracted from the matrix.  Cell counts
            # are small integers, so folding a whole bincount in at once is
            # bit-identical to n repeated +/- 1.0 updates.
            maxlen = self._window.maxlen or 0
            if n >= maxlen:
                # The batch alone fills the window: everything previously
                # tracked is evicted, so rebuild from the batch tail.
                tail = codes[n - maxlen :]
                self._window.clear()
                self._window.extend(tail.tolist())
                flat[:] = np.bincount(tail, minlength=n_cells)
                self._total += n
                return
            n_evicted = max(0, len(self._window) + n - maxlen)
            from_old = min(n_evicted, len(self._window))
            for _ in range(from_old):
                flat[self._window.popleft()] -= 1.0
            evicted_new = n_evicted - from_old
            self._window.extend(codes.tolist())
            if evicted_new > 0:
                flat -= np.bincount(codes[:evicted_new], minlength=n_cells)
        flat += np.bincount(codes, minlength=n_cells)
        self._total += n

    # ------------------------------------------------------------- derived
    def support(self) -> np.ndarray:
        """Number of (windowed) instances of each true class."""
        return self._matrix.sum(axis=1)

    def accuracy(self) -> float:
        total = self._matrix.sum()
        if total == 0.0:
            return 0.0
        return float(np.trace(self._matrix) / total)

    def recall_per_class(self) -> np.ndarray:
        """Recall of each class; NaN for classes without support."""
        support = self.support()
        diagonal = np.diag(self._matrix)
        with np.errstate(invalid="ignore", divide="ignore"):
            recall = np.where(support > 0, diagonal / support, np.nan)
        return recall

    def precision_per_class(self) -> np.ndarray:
        """Precision of each class; NaN for classes never predicted."""
        predicted = self._matrix.sum(axis=0)
        diagonal = np.diag(self._matrix)
        with np.errstate(invalid="ignore", divide="ignore"):
            precision = np.where(predicted > 0, diagonal / predicted, np.nan)
        return precision

    def geometric_mean(self) -> float:
        """Multi-class G-mean: geometric mean of per-class recalls.

        Classes without support in the window are ignored; if any observed
        class has zero recall the G-mean is zero (the standard convention that
        makes the metric unforgiving of completely missed classes).
        """
        recall = self.recall_per_class()
        observed = ~np.isnan(recall)
        if not observed.any():
            return 0.0
        values = recall[observed]
        if np.any(values <= 0.0):
            return 0.0
        return float(np.exp(np.mean(np.log(values))))

    def kappa(self) -> float:
        """Cohen's kappa over the (windowed) counts."""
        total = self._matrix.sum()
        if total == 0.0:
            return 0.0
        observed = np.trace(self._matrix) / total
        row = self._matrix.sum(axis=1) / total
        column = self._matrix.sum(axis=0) / total
        expected = float(np.sum(row * column))
        if expected >= 1.0:
            return 0.0
        return float((observed - expected) / (1.0 - expected))

    def imbalance_ratio(self) -> float:
        """Observed ratio between the biggest and smallest class supports."""
        support = self.support()
        positive = support[support > 0]
        if positive.size < 2:
            return 1.0
        return float(positive.max() / positive.min())
