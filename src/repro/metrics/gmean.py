"""Prequential multi-class G-mean (pmGM).

The geometric mean of per-class recalls computed over a sliding window of
recent predictions — the second skew-insensitive metric used throughout the
paper's evaluation.  A thin wrapper over
:class:`repro.metrics.confusion.StreamingConfusionMatrix`.
"""

from __future__ import annotations

from repro.core.snapshot import Snapshotable
from repro.metrics.confusion import StreamingConfusionMatrix

__all__ = ["PrequentialGMean"]


class PrequentialGMean(Snapshotable):
    """Sliding-window multi-class geometric mean of recalls."""

    def __init__(self, n_classes: int, window_size: int = 1000) -> None:
        self._confusion = StreamingConfusionMatrix(n_classes, window_size=window_size)

    @property
    def n_classes(self) -> int:
        return self._confusion.n_classes

    def reset(self) -> None:
        self._confusion.reset()

    def update(self, y_true: int, y_pred: int) -> None:
        self._confusion.update(y_true, y_pred)

    def update_batch(self, y_true, y_pred) -> None:
        self._confusion.update_batch(y_true, y_pred)

    def value(self) -> float:
        """Current windowed G-mean (0 when any observed class is fully missed)."""
        return self._confusion.geometric_mean()

    def recall_per_class(self):
        """Windowed recall of each class (NaN for classes without support)."""
        return self._confusion.recall_per_class()
