"""Self hyper-parameter tuning for streaming learners (Veloso et al., 2018).

The paper tunes every drift detector per stream with the Self Parameter Tuning
approach, an online Nelder-Mead search: a simplex of hyper-parameter vectors
is evaluated on successive windows of the stream, and reflection / expansion /
contraction / shrink steps move the simplex towards better-performing
configurations while the stream is being processed.

:class:`NelderMeadTuner` provides an ask/tell interface so it can be driven by
any evaluation loop: call :meth:`ask` to obtain the next candidate parameter
set, evaluate it on the next data window, and report the score with
:meth:`tell`.  :func:`tune_on_stream` wires the tuner to a stream and an
evaluation callback for convenience.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

__all__ = ["ParameterSpace", "NelderMeadTuner", "tune_on_stream"]


@dataclass(frozen=True)
class ParameterSpace:
    """Continuous (or integer) box constraints for the tuned hyper-parameters.

    Attributes
    ----------
    bounds:
        Mapping ``name -> (low, high)``.
    integer:
        Names of parameters that must be rounded to integers when decoded.
    """

    bounds: Mapping[str, tuple[float, float]]
    integer: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        if not self.bounds:
            raise ValueError("bounds must not be empty")
        for name, (low, high) in self.bounds.items():
            if high <= low:
                raise ValueError(f"invalid bounds for {name!r}: ({low}, {high})")
        unknown = set(self.integer) - set(self.bounds)
        if unknown:
            raise ValueError(f"integer parameters not in bounds: {sorted(unknown)}")

    @property
    def names(self) -> list[str]:
        return list(self.bounds)

    @property
    def dimension(self) -> int:
        return len(self.bounds)

    def clip(self, vector: np.ndarray) -> np.ndarray:
        lows = np.array([self.bounds[name][0] for name in self.names])
        highs = np.array([self.bounds[name][1] for name in self.names])
        return np.clip(vector, lows, highs)

    def decode(self, vector: np.ndarray) -> dict[str, float | int]:
        """Turn a raw simplex vertex into a parameter dictionary."""
        vector = self.clip(np.asarray(vector, dtype=np.float64))
        decoded: dict[str, float | int] = {}
        for value, name in zip(vector, self.names):
            decoded[name] = int(round(value)) if name in self.integer else float(value)
        return decoded

    def random_vector(self, rng: np.random.Generator) -> np.ndarray:
        lows = np.array([self.bounds[name][0] for name in self.names])
        highs = np.array([self.bounds[name][1] for name in self.names])
        return rng.uniform(lows, highs)


class NelderMeadTuner:
    """Online Nelder-Mead simplex search with an ask/tell interface.

    The tuner maximises the reported score.  Internally it keeps the classic
    simplex of ``d + 1`` vertices; each :meth:`ask` returns the parameter set
    that currently needs evaluation (initial vertices first, then reflection /
    expansion / contraction candidates), and :meth:`tell` feeds the observed
    score back, advancing the simplex state machine.
    """

    _ALPHA = 1.0  # reflection
    _GAMMA = 2.0  # expansion
    _RHO = 0.5  # contraction
    _SIGMA = 0.5  # shrink

    def __init__(self, space: ParameterSpace, seed: int | None = None) -> None:
        self._space = space
        self._rng = np.random.default_rng(seed)
        dimension = space.dimension
        self._vertices = [space.random_vector(self._rng) for _ in range(dimension + 1)]
        self._scores: list[float | None] = [None] * (dimension + 1)
        self._phase = "init"
        self._pending_index = 0
        self._candidate: np.ndarray | None = None
        self._candidate_kind = ""
        self._reflection_score = float("-inf")
        self._n_evaluations = 0

    # ---------------------------------------------------------------- state
    @property
    def n_evaluations(self) -> int:
        return self._n_evaluations

    @property
    def best_parameters(self) -> dict[str, float | int]:
        """Best parameter set found so far (undefined before any tell)."""
        scored = [
            (score, vertex)
            for score, vertex in zip(self._scores, self._vertices)
            if score is not None
        ]
        if not scored:
            return self._space.decode(self._vertices[0])
        best_score, best_vertex = max(scored, key=lambda item: item[0])
        return self._space.decode(best_vertex)

    @property
    def best_score(self) -> float:
        scored = [score for score in self._scores if score is not None]
        return max(scored) if scored else float("-inf")

    # ------------------------------------------------------------- ask/tell
    def ask(self) -> dict[str, float | int]:
        """Return the next parameter set to evaluate."""
        if self._phase == "init":
            return self._space.decode(self._vertices[self._pending_index])
        if self._candidate is None:
            self._prepare_reflection()
        assert self._candidate is not None
        return self._space.decode(self._candidate)

    def tell(self, score: float) -> None:
        """Report the score of the most recently asked parameter set."""
        self._n_evaluations += 1
        score = float(score)
        if self._phase == "init":
            self._scores[self._pending_index] = score
            self._pending_index += 1
            if self._pending_index >= len(self._vertices):
                self._phase = "search"
            return
        self._advance_simplex(score)

    # ------------------------------------------------------------ internals
    def _order(self) -> None:
        pairs = sorted(
            zip(self._scores, self._vertices), key=lambda item: item[0], reverse=True
        )
        self._scores = [score for score, _ in pairs]
        self._vertices = [vertex for _, vertex in pairs]

    def _centroid(self) -> np.ndarray:
        return np.mean(self._vertices[:-1], axis=0)

    def _prepare_reflection(self) -> None:
        self._order()
        centroid = self._centroid()
        worst = self._vertices[-1]
        self._candidate = self._space.clip(
            centroid + self._ALPHA * (centroid - worst)
        )
        self._candidate_kind = "reflection"

    def _advance_simplex(self, score: float) -> None:
        assert self._candidate is not None
        centroid = self._centroid()
        worst = self._vertices[-1]
        best_score = self._scores[0]
        second_worst_score = self._scores[-2]

        if self._candidate_kind == "reflection":
            self._reflection_score = score
            self._reflection_vertex = self._candidate
            if score > best_score:
                self._candidate = self._space.clip(
                    centroid + self._GAMMA * (self._reflection_vertex - centroid)
                )
                self._candidate_kind = "expansion"
                return
            if score > second_worst_score:
                self._replace_worst(self._reflection_vertex, score)
            else:
                self._candidate = self._space.clip(
                    centroid + self._RHO * (worst - centroid)
                )
                self._candidate_kind = "contraction"
                return
        elif self._candidate_kind == "expansion":
            if score > self._reflection_score:
                self._replace_worst(self._candidate, score)
            else:
                self._replace_worst(self._reflection_vertex, self._reflection_score)
        elif self._candidate_kind == "contraction":
            if score > self._scores[-1]:
                self._replace_worst(self._candidate, score)
            else:
                self._shrink()
        self._candidate = None
        self._candidate_kind = ""

    def _replace_worst(self, vertex: np.ndarray, score: float) -> None:
        self._vertices[-1] = vertex
        self._scores[-1] = score

    def _shrink(self) -> None:
        best = self._vertices[0]
        for index in range(1, len(self._vertices)):
            self._vertices[index] = self._space.clip(
                best + self._SIGMA * (self._vertices[index] - best)
            )
            # Shrunk vertices need re-evaluation; mark with a pessimistic score
            # so they are revisited as "worst" vertices in later iterations.
            self._scores[index] = (
                self._scores[index] - abs(self._scores[index]) * 0.1
                if self._scores[index] is not None
                else None
            )


def tune_on_stream(
    space: ParameterSpace,
    evaluate: Callable[[dict[str, float | int]], float],
    n_iterations: int = 20,
    seed: int | None = None,
) -> tuple[dict[str, float | int], float]:
    """Run the tuner for a fixed budget of window evaluations.

    ``evaluate`` receives a parameter dictionary and must return the score of
    a model configured with those parameters on the next data window (higher
    is better).  Returns the best parameters and their score.
    """
    if n_iterations < space.dimension + 1:
        raise ValueError("n_iterations must cover at least the initial simplex")
    tuner = NelderMeadTuner(space, seed=seed)
    for _ in range(n_iterations):
        params = tuner.ask()
        tuner.tell(evaluate(params))
    return tuner.best_parameters, tuner.best_score
