"""Mid-run checkpoints for the prequential runner.

A :class:`RunnerCheckpoint` bundles everything a
:class:`~repro.evaluation.prequential.PrequentialRunner` run accumulates —
the stream's generator state, the live classifier, the detector, the
prequential evaluator, and the loop bookkeeping (replay buffer, detections,
warm-up rows, component timings) — into one strict-JSON payload built on the
:mod:`repro.core.snapshot` contract.  Because every component's snapshot is
bit-lossless and the runner's chunked modes are chunk-exact, a run resumed
from a checkpoint produces results bit-identical to the uninterrupted run.

Checkpoints are written atomically (:func:`repro.core.durability.atomic_write_text`)
so a SIGKILL mid-save leaves the previous checkpoint intact, and loaded
tolerantly: a missing, torn, or foreign file simply means "start from the
beginning", never an error.  A checkpoint additionally binds to its run
configuration through a ``meta`` dict (stream/detector identity, execution
mode, runner parameters); a checkpoint whose binding does not match the
requesting run is ignored rather than misapplied.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.core.durability import atomic_write_text
from repro.core.jsonio import dumps_strict
from repro.core.snapshot import decode_state, encode_state

__all__ = ["RunnerCheckpoint", "CHECKPOINT_KIND", "CHECKPOINT_VERSION"]

CHECKPOINT_KIND = "RunnerCheckpoint"

#: Bumped whenever the payload layout changes; loads require an exact match
#: (same no-migrations policy as :class:`~repro.core.snapshot.Snapshotable`).
CHECKPOINT_VERSION = 1


@dataclass
class RunnerCheckpoint:
    """One resumable cut of a prequential run at an instance boundary.

    Attributes
    ----------
    meta:
        Run-binding parameters (stream/detector identity, execution mode,
        runner configuration).  A checkpoint only applies to a run whose
        meta is equal.
    produced:
        Number of instances fully processed when the cut was taken.
    stream, classifier, evaluator, detector:
        Component snapshots (``detector`` is ``None`` for baseline runs).
    progress:
        Encoded loop bookkeeping: replay buffer, detections, blamed
        classes, warm-up rows, and component timings.
    """

    meta: dict
    produced: int
    stream: dict
    classifier: dict
    evaluator: dict
    detector: "dict | None"
    progress: dict

    # -------------------------------------------------------------- capture
    @classmethod
    def capture(cls, meta: dict, produced: int, data_stream, detector, state):
        """Snapshot a run (see ``_RunState`` in the runner) at ``produced``."""
        progress = encode_state(
            {
                "replay": state.replay,
                "detections": state.detections,
                "detected_classes": state.detected_classes,
                "detector_time": state.detector_time,
                "classifier_time": state.classifier_time,
                "warm_x": state.warm_x,
                "warm_y": state.warm_y,
                "warm_started": state.warm_started,
            }
        )
        return cls(
            meta=dict(meta),
            produced=int(produced),
            stream=data_stream.snapshot(),
            classifier=state.classifier.snapshot(),
            evaluator=state.evaluator.snapshot(),
            detector=None if detector is None else detector.snapshot(),
            progress=progress,
        )

    # --------------------------------------------------------------- resume
    def matches(self, meta: dict, data_stream, detector, state) -> bool:
        """Whether this checkpoint binds to the given run configuration.

        Checked *before* :meth:`apply` mutates anything: the run meta must be
        equal and every component snapshot must carry the exact kind/version
        of the object it would restore into.
        """
        if self.meta != dict(meta):
            return False
        if (self.detector is None) != (detector is None):
            return False
        pairs = [
            (self.stream, data_stream),
            (self.classifier, state.classifier),
            (self.evaluator, state.evaluator),
        ]
        if detector is not None:
            pairs.append((self.detector, detector))
        return all(_component_matches(snap, obj) for snap, obj in pairs)

    def apply(self, data_stream, detector, state) -> int:
        """Restore every component in place; returns the resume position."""
        data_stream.restore(self.stream)
        state.classifier.restore(self.classifier)
        state.evaluator.restore(self.evaluator)
        if detector is not None:
            detector.restore(self.detector)
        progress = decode_state(self.progress)
        state.replay = progress["replay"]
        state.detections = list(progress["detections"])
        state.detected_classes = list(progress["detected_classes"])
        state.detector_time = float(progress["detector_time"])
        state.classifier_time = float(progress["classifier_time"])
        state.warm_x = list(progress["warm_x"])
        state.warm_y = list(progress["warm_y"])
        state.warm_started = bool(progress["warm_started"])
        return self.produced

    # ---------------------------------------------------------- persistence
    def to_payload(self) -> dict:
        return {
            "kind": CHECKPOINT_KIND,
            "version": CHECKPOINT_VERSION,
            "meta": self.meta,
            "produced": self.produced,
            "stream": self.stream,
            "classifier": self.classifier,
            "evaluator": self.evaluator,
            "detector": self.detector,
            "progress": self.progress,
        }

    @classmethod
    def from_payload(cls, payload) -> "RunnerCheckpoint | None":
        """Rebuild from a parsed payload; anything unusable means ``None``."""
        if not isinstance(payload, dict):
            return None
        if payload.get("kind") != CHECKPOINT_KIND:
            return None
        if payload.get("version") != CHECKPOINT_VERSION:
            return None
        try:
            return cls(
                meta=dict(payload["meta"]),
                produced=int(payload["produced"]),
                stream=payload["stream"],
                classifier=payload["classifier"],
                evaluator=payload["evaluator"],
                detector=payload.get("detector"),
                progress=payload["progress"],
            )
        except (KeyError, TypeError, ValueError):
            return None

    def save(self, path: "str | Path") -> None:
        """Atomically persist: tmp-write + fsync + replace + dir fsync."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(target.parent, target, dumps_strict(self.to_payload()))

    @classmethod
    def load(cls, path: "str | Path") -> "RunnerCheckpoint | None":
        """Parse a persisted checkpoint; missing or corrupt means ``None``."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        return cls.from_payload(payload)


def _component_matches(snap, obj) -> bool:
    return (
        isinstance(snap, dict)
        and snap.get("kind") == type(obj).__name__
        and snap.get("version") == type(obj).SNAPSHOT_VERSION
    )
