"""Result collection and text rendering of the paper's tables.

:class:`ResultTable` accumulates per-(dataset, method) metric values and
renders Table III-style text output: one row per dataset, one column per
method, plus the average-rank row used by the Friedman/Bonferroni-Dunn
analysis.  It is deliberately plain-text (no plotting dependencies) so the
benchmark harnesses can print series for every figure as rows of numbers.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.evaluation.stats import average_ranks

__all__ = ["ResultTable", "format_series_table"]


@dataclass
class ResultTable:
    """A (datasets x methods) table of metric values with rank summary."""

    metric_name: str = "metric"
    _cells: "OrderedDict[str, OrderedDict[str, float]]" = field(
        default_factory=OrderedDict
    )

    def add(
        self, dataset: str, method: str, value: float, overwrite: bool = False
    ) -> None:
        """Record one value.

        A second ``add`` for the same (dataset, method) cell raises — silent
        overwrites have historically hidden aggregation bugs where two runs
        collapsed into one cell.  Pass ``overwrite=True`` to replace a cell
        deliberately.
        """
        row = self._cells.setdefault(dataset, OrderedDict())
        if method in row and not overwrite:
            raise ValueError(
                f"duplicate cell ({dataset!r}, {method!r}): already holds "
                f"{row[method]!r}; pass overwrite=True to replace it"
            )
        row[method] = float(value)

    @property
    def datasets(self) -> list[str]:
        return list(self._cells)

    @property
    def methods(self) -> list[str]:
        methods: list[str] = []
        for row in self._cells.values():
            for method in row:
                if method not in methods:
                    methods.append(method)
        return methods

    def value(self, dataset: str, method: str) -> float:
        return self._cells[dataset][method]

    def to_matrix(self) -> np.ndarray:
        """Dense (datasets x methods) matrix; missing cells become NaN."""
        methods = self.methods
        matrix = np.full((len(self._cells), len(methods)), np.nan)
        for i, dataset in enumerate(self.datasets):
            for j, method in enumerate(methods):
                matrix[i, j] = self._cells[dataset].get(method, np.nan)
        return matrix

    def ranks(self, higher_is_better: bool = True) -> dict[str, float]:
        """Average rank of every method over the complete rows."""
        matrix = self.to_matrix()
        complete = ~np.isnan(matrix).any(axis=1)
        if not complete.any():
            return {method: float("nan") for method in self.methods}
        ranks = average_ranks(matrix[complete], higher_is_better)
        return dict(zip(self.methods, (float(rank) for rank in ranks)))

    def to_text(self, precision: int = 2, higher_is_better: bool = True) -> str:
        """Render the table (plus an average-rank footer) as aligned text."""
        methods = self.methods
        width = max([len(self.metric_name)] + [len(name) for name in self.datasets]) + 2
        column_width = max(8, max(len(name) for name in methods) + 2)
        lines = [
            self.metric_name.ljust(width)
            + "".join(name.rjust(column_width) for name in methods)
        ]
        for dataset in self.datasets:
            cells = []
            for method in methods:
                value = self._cells[dataset].get(method)
                cells.append(
                    ("-" if value is None else f"{value:.{precision}f}").rjust(
                        column_width
                    )
                )
            lines.append(dataset.ljust(width) + "".join(cells))
        ranks = self.ranks(higher_is_better)
        lines.append(
            "ranks".ljust(width)
            + "".join(f"{ranks[m]:.2f}".rjust(column_width) for m in methods)
        )
        return "\n".join(lines)


def format_series_table(
    x_label: str,
    x_values: list,
    series: dict[str, list[float]],
    precision: int = 2,
) -> str:
    """Render figure-style series (one column per method, rows over x).

    Used by the Fig. 8 / Fig. 9 benchmark harnesses to print pmAUC as a
    function of the number of drifted classes or the imbalance ratio.
    """
    methods = list(series)
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(f"series {name!r} length does not match x_values")
    width = max(len(x_label), max(len(str(x)) for x in x_values)) + 2
    column_width = max(8, max(len(name) for name in methods) + 2)
    lines = [x_label.ljust(width) + "".join(name.rjust(column_width) for name in methods)]
    for index, x in enumerate(x_values):
        row = str(x).ljust(width)
        row += "".join(
            f"{series[name][index]:.{precision}f}".rjust(column_width)
            for name in methods
        )
        lines.append(row)
    return "\n".join(lines)
