"""Evaluation harness: prequential runner, experiments, statistics, tuning."""

from repro.evaluation.experiment import (
    compare_detectors,
    default_classifier_factory,
    paper_detector_factories,
)
from repro.evaluation.grid import (
    ExperimentGrid,
    GridCell,
    GridCellResult,
    GridResult,
)
from repro.evaluation.prequential import PrequentialRunner, RunResult
from repro.evaluation.results import ResultTable, format_series_table
from repro.evaluation.stats import (
    BayesianSignedTestResult,
    BonferroniDunnResult,
    FriedmanResult,
    average_ranks,
    bayesian_signed_test,
    bonferroni_dunn_critical_distance,
    bonferroni_dunn_test,
    friedman_test,
    nemenyi_critical_distance,
)
from repro.evaluation.tuning import NelderMeadTuner, ParameterSpace, tune_on_stream

__all__ = [
    "compare_detectors",
    "default_classifier_factory",
    "paper_detector_factories",
    "ExperimentGrid",
    "GridCell",
    "GridCellResult",
    "GridResult",
    "PrequentialRunner",
    "RunResult",
    "ResultTable",
    "format_series_table",
    "BayesianSignedTestResult",
    "BonferroniDunnResult",
    "FriedmanResult",
    "average_ranks",
    "bayesian_signed_test",
    "bonferroni_dunn_critical_distance",
    "bonferroni_dunn_test",
    "friedman_test",
    "nemenyi_critical_distance",
    "NelderMeadTuner",
    "ParameterSpace",
    "tune_on_stream",
]
