"""Experiment orchestration: the paper's detector line-up on arbitrary streams.

Provides factories for the six detectors compared in the paper (WSTD, RDDM,
FHDDM, PerfSim, DDM-OCI, RBM-IM), the default base classifier (cost-sensitive
perceptron tree), and :func:`compare_detectors`, which runs every detector on
a scenario through the prequential harness and returns one
:class:`~repro.evaluation.prequential.RunResult` per detector.  The benchmark
harnesses under ``benchmarks/`` are thin wrappers over this module.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.classifiers.base import StreamClassifier
from repro.classifiers.perceptron_tree import CostSensitivePerceptronTree
from repro.core.detector import RBMIM, RBMIMConfig
from repro.detectors.base import DriftDetector
from repro.detectors.ddm_oci import DDM_OCI
from repro.detectors.fhddm import FHDDM
from repro.detectors.perfsim import PerfSim
from repro.detectors.rddm import RDDM
from repro.detectors.wstd import WSTD
from repro.evaluation.prequential import PrequentialRunner, RunResult
from repro.streams.scenarios import ScenarioStream

__all__ = [
    "DetectorFactory",
    "default_classifier_factory",
    "paper_detector_factories",
    "compare_detectors",
]

#: A detector factory receives (n_features, n_classes) and builds a detector.
DetectorFactory = Callable[[int, int], DriftDetector]


def default_classifier_factory(n_features: int, n_classes: int) -> StreamClassifier:
    """The paper's base classifier: Adaptive Cost-Sensitive Perceptron Tree."""
    return CostSensitivePerceptronTree(
        n_features=n_features,
        n_classes=n_classes,
        grace_period=200,
        max_depth=3,
        cost_sensitive=True,
        seed=7,
    )


def paper_detector_factories(
    batch_size: int = 50, seed: int = 11
) -> dict[str, DetectorFactory]:
    """Factories for the six drift detectors compared in the paper.

    The returned mapping preserves the paper's naming: three standard
    detectors (WSTD, RDDM, FHDDM), two imbalance-aware baselines (PerfSim,
    DDM-OCI), and RBM-IM.
    """

    def make_wstd(n_features: int, n_classes: int) -> DriftDetector:
        return WSTD(window_size=75, drift_significance=0.003)

    def make_rddm(n_features: int, n_classes: int) -> DriftDetector:
        return RDDM()

    def make_fhddm(n_features: int, n_classes: int) -> DriftDetector:
        return FHDDM(window_size=100, delta=1e-6)

    def make_perfsim(n_features: int, n_classes: int) -> DriftDetector:
        return PerfSim(n_classes=n_classes, batch_size=10 * batch_size, lambda_=0.2)

    def make_ddm_oci(n_features: int, n_classes: int) -> DriftDetector:
        return DDM_OCI(n_classes=n_classes)

    def make_rbm_im(n_features: int, n_classes: int) -> DriftDetector:
        config = RBMIMConfig(batch_size=batch_size, seed=seed)
        return RBMIM(n_features=n_features, n_classes=n_classes, config=config)

    return {
        "WSTD": make_wstd,
        "RDDM": make_rddm,
        "FHDDM": make_fhddm,
        "PerfSim": make_perfsim,
        "DDM-OCI": make_ddm_oci,
        "RBM-IM": make_rbm_im,
    }


def compare_detectors(
    scenario: ScenarioStream,
    detector_factories: Mapping[str, DetectorFactory] | None = None,
    classifier_factory: Callable[[int, int], StreamClassifier] | None = None,
    n_instances: int | None = None,
    window_size: int = 1000,
    pretrain_size: int = 200,
    chunk_size: int | None = 512,
) -> dict[str, RunResult]:
    """Run every detector on (a restarted copy of) the same scenario stream.

    The stream is restarted before each detector so that all detectors see an
    identical instance sequence, mirroring the paper's protocol of pairing
    every detector with the same base classifier and stream.  Instances are
    pulled through the chunked-exact runner mode by default — vectorized
    stream generation with results identical to the per-instance loop.
    """
    factories = dict(detector_factories or paper_detector_factories())
    classifier_factory = classifier_factory or default_classifier_factory
    runner = PrequentialRunner(
        classifier_factory=classifier_factory,
        window_size=window_size,
        pretrain_size=pretrain_size,
        chunk_size=chunk_size,
    )
    results: dict[str, RunResult] = {}
    for name, factory in factories.items():
        scenario.stream.restart()
        detector = factory(scenario.n_features, scenario.n_classes)
        results[name] = runner.run(
            scenario,
            detector,
            n_instances=n_instances,
            detector_name=name,
        )
    return results
