"""Parallel experiment grid: (streams x detectors x seeds) fan-out.

The paper's evaluation is a large cross-product — 24 benchmark streams, six
detectors, multiple repetitions — and every cell is an independent prequential
run.  :class:`ExperimentGrid` materialises that cross-product and fans it out
over a pluggable :class:`~repro.protocol.backends.ExecutionBackend`:

* ``backend="process"`` — one OS process per worker (default; NumPy-heavy
  cells scale with cores).  Factories must be picklable (module-level
  functions or ``functools.partial`` over them; lambdas are not);
  unpicklable payloads degrade to threads with a warning.
* ``backend="thread"`` — threads; useful when factories are closures or the
  grid is small.
* ``backend="serial"`` — in-process loop; deterministic ordering, easiest to
  debug.
* ``backend="cluster"`` — a dask-style distributed cluster, degrading to
  local execution when none is reachable.

(see :mod:`repro.protocol.backends` for the registry — third-party backends
register there and are selectable by name here).

Every cell builds its stream *inside the worker* from ``(factory, seed)``, so
no stream state crosses process boundaries and each cell is independently
reproducible.  Failures are captured per cell (the grid keeps going) and
reported on the :class:`GridResult`.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.core.durability import atomic_write_text
from repro.core.jsonio import dumps_strict, sanitize_nonfinite

from repro.evaluation.prequential import PrequentialRunner, RunResult
from repro.evaluation.results import ResultTable
from repro.streams.base import DataStream
from repro.streams.scenarios import ScenarioStream

__all__ = [
    "GridCell",
    "GridCellResult",
    "GridResult",
    "ExperimentGrid",
    "CellTask",
    "cell_record",
    "run_cell_tasks",
]

#: Times a cell may be caught in a broken pool before it is written off.
#: A crashing worker (OOM kill, native segfault) breaks *every* future
#: sharing the pool, so innocent queued cells legitimately see one or two
#: broken pools before they get a clean run of their own.
_MAX_BROKEN_RETRIES = 2

#: Builds the stream for one cell: ``(seed) -> ScenarioStream | DataStream``.
StreamFactory = Callable[[int], "ScenarioStream | DataStream"]
#: Builds a detector for one cell: ``(n_features, n_classes) -> detector``.
DetectorFactory = Callable[[int, int], object]


@dataclass(frozen=True)
class GridCell:
    """Coordinates of one experiment in the grid."""

    stream: str
    detector: str
    seed: int


@dataclass
class GridCellResult:
    """One finished (or failed) grid cell."""

    cell: GridCell
    result: RunResult | None
    wall_time: float
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None and self.result is not None


@dataclass
class GridResult:
    """Aggregated outcome of a grid run."""

    cells: list[GridCellResult] = field(default_factory=list)

    @property
    def successes(self) -> list[GridCellResult]:
        return [cell for cell in self.cells if cell.ok]

    @property
    def failures(self) -> list[GridCellResult]:
        return [cell for cell in self.cells if not cell.ok]

    def metric(self, cell_result: GridCellResult, name: str) -> float:
        value = getattr(cell_result.result, name)
        return float(value)

    def table(self, metric: str = "pmauc", scale: float = 1.0) -> ResultTable:
        """(streams x detectors) table of a RunResult metric, seed-averaged."""
        values: dict[tuple[str, str], list[float]] = {}
        for cell_result in self.successes:
            key = (cell_result.cell.stream, cell_result.cell.detector)
            values.setdefault(key, []).append(
                scale * self.metric(cell_result, metric)
            )
        table = ResultTable(metric_name=metric)
        for (stream, detector), series in values.items():
            table.add(stream, detector, float(np.mean(series)))
        return table

    def to_records(self) -> list[dict]:
        """Flat JSON-friendly records, one per cell (for disk/DB sinks)."""
        return [cell_record(cell_result) for cell_result in self.cells]

    def save_json(self, path: "str | Path") -> None:
        """Persist the records as **strict** JSON, atomically.

        Serialised via :func:`repro.core.jsonio.dumps_strict` (non-finite
        floats become ``null`` instead of bare ``NaN`` tokens) and written
        with the stores' tmp-write → fsync → ``os.replace`` → dir-fsync
        pattern, so a crash mid-save can never leave a torn file where a
        previous result set used to be.
        """
        target = Path(path)
        atomic_write_text(
            target.parent, target, dumps_strict(self.to_records(), indent=2)
        )


def cell_record(cell_result: GridCellResult) -> dict:
    """One flat JSON-friendly record for a finished (or failed) grid cell.

    Includes the run metrics, detection positions, and — when the stream
    carried ground truth — the drift-detection report (recall, delay, false
    alarms), so a record is self-contained for disk/DB sinks.  The record is
    **strict JSON**: non-finite floats (a broken-pool ``wall_time``, a
    no-detections ``mean_delay``) are replaced by ``None`` so serialising it
    can never emit a bare ``NaN`` that sqlite/parquet/jq consumers reject.
    """
    record: dict = dict(asdict(cell_result.cell))
    record["wall_time"] = cell_result.wall_time
    record["error"] = cell_result.error
    if cell_result.result is not None:
        run = cell_result.result
        record.update(
            pmauc=run.pmauc,
            pmgm=run.pmgm,
            accuracy=run.accuracy,
            kappa=run.kappa,
            detections=list(run.detections),
            n_instances=run.n_instances,
            detector_time=run.detector_time,
            classifier_time=run.classifier_time,
        )
        if run.drift_report is not None:
            report = run.drift_report
            record["drift_report"] = {
                "n_true_drifts": report.n_true_drifts,
                "n_detections": report.n_detections,
                "n_detected": report.n_detected,
                "n_false_alarms": report.n_false_alarms,
                "mean_delay": report.mean_delay,
                "detection_recall": report.detection_recall,
            }
    return sanitize_nonfinite(record)


def _execute_cell(
    cell: GridCell,
    stream_factory: StreamFactory,
    detector_factory: DetectorFactory | None,
    classifier_factory: Callable,
    runner_kwargs: dict,
    run_kwargs: dict,
) -> GridCellResult:
    """Run one grid cell; module-level so process pools can pickle it."""
    started = time.perf_counter()
    try:
        stream = stream_factory(cell.seed)
        if isinstance(stream, ScenarioStream):
            data_stream = stream.stream
        else:
            data_stream = stream
        detector = (
            detector_factory(data_stream.n_features, data_stream.n_classes)
            if detector_factory is not None
            else None
        )
        runner = PrequentialRunner(classifier_factory, **runner_kwargs)
        result = runner.run(
            stream, detector, detector_name=cell.detector, **run_kwargs
        )
        return GridCellResult(
            cell=cell, result=result, wall_time=time.perf_counter() - started
        )
    except Exception:  # noqa: BLE001 - failures are per-cell data, not fatal
        return GridCellResult(
            cell=cell,
            result=None,
            wall_time=time.perf_counter() - started,
            error=traceback.format_exc(),
        )


@dataclass(frozen=True)
class CellTask:
    """A fully-specified unit of grid work: one cell plus its factories.

    Both :class:`ExperimentGrid` and the protocol pipeline
    (:mod:`repro.protocol`) reduce their workload to a list of cell tasks and
    hand it to :func:`run_cell_tasks`; the pipeline filters the list first so
    completed cells are never resubmitted.
    """

    cell: GridCell
    stream_factory: StreamFactory
    detector_factory: DetectorFactory | None
    classifier_factory: Callable
    runner_kwargs: Mapping = field(default_factory=dict)
    run_kwargs: Mapping = field(default_factory=dict)

    def args(self) -> tuple:
        return (
            self.cell,
            self.stream_factory,
            self.detector_factory,
            self.classifier_factory,
            dict(self.runner_kwargs),
            dict(self.run_kwargs),
        )

    def execute(self) -> GridCellResult:
        return _execute_cell(*self.args())


def tasks_picklable(tasks: Sequence[CellTask]) -> bool:
    """Whether every task's **full** payload can cross a process boundary.

    Probes ``task.args()`` — the exact tuple a process worker receives — not
    just the three factories: an unpicklable value hiding inside
    ``runner_kwargs``/``run_kwargs`` would otherwise pass the probe and then
    fail every cell at submit time on the process backend.
    """
    import pickle

    try:
        pickle.dumps(tuple(task.args() for task in tasks))
    except Exception:  # noqa: BLE001 - any pickling failure means "no"
        return False
    return True


def run_cell_tasks(
    tasks: Sequence[CellTask],
    backend: "str | object" = "process",
    max_workers: int | None = None,
    progress: Callable[[GridCellResult], None] | None = None,
) -> list[GridCellResult]:
    """Execute cell tasks on the chosen backend, preserving input order.

    ``backend`` is a registered backend name — ``"process"`` (degrades to
    threads, with a warning, when a payload is not picklable), ``"thread"``,
    ``"serial"``, ``"cluster"`` (degrades to local execution when no cluster
    is reachable) — or an :class:`~repro.protocol.backends.ExecutionBackend`
    instance.  ``progress`` is invoked with every finished cell; worker
    crashes surface as failed :class:`GridCellResult`\\ s rather than
    exceptions (see :mod:`repro.protocol.backends` for the broken-pool and
    lost-worker retry semantics).
    """
    # Imported lazily: backends live beside the protocol pipeline (which
    # imports this module), so a module-level import would be circular.
    from repro.protocol.backends import resolve_backend

    return resolve_backend(backend).run(
        tasks, max_workers=max_workers, progress=progress
    )


class ExperimentGrid:
    """Fan a (streams x detectors x seeds) grid across parallel workers.

    Parameters
    ----------
    streams:
        Mapping of stream name to a factory ``seed -> stream``; the stream is
        built inside the worker, so each cell is independent.
    detectors:
        Mapping of detector name to ``(n_features, n_classes) -> detector``.
        A ``None`` factory runs a detector-less baseline.
    seeds:
        Seeds to repeat every (stream, detector) pair with.
    classifier_factory:
        Base classifier for every cell; defaults to the paper's
        cost-sensitive perceptron tree.
    n_instances:
        Instances per run (``None`` = the scenario's recommended length).
    runner_kwargs:
        Extra :class:`PrequentialRunner` options (``chunk_size``,
        ``batch_mode``, ``pretrain_size``, ...).  With ``batch_mode=True``
        every registry detector runs its NumPy-native ``step_batch`` kernel
        (chunk-exact detections; see :mod:`repro.detectors.base`), which is
        the recommended configuration for large grids.
    """

    def __init__(
        self,
        streams: Mapping[str, StreamFactory],
        detectors: Mapping[str, DetectorFactory | None],
        seeds: Sequence[int] = (0,),
        classifier_factory: Callable | None = None,
        n_instances: int | None = None,
        **runner_kwargs,
    ) -> None:
        if not streams:
            raise ValueError("streams must not be empty")
        if not detectors:
            raise ValueError("detectors must not be empty")
        if not seeds:
            raise ValueError("seeds must not be empty")
        if classifier_factory is None:
            from repro.evaluation.experiment import default_classifier_factory

            classifier_factory = default_classifier_factory
        self._streams = dict(streams)
        self._detectors = dict(detectors)
        self._seeds = [int(seed) for seed in seeds]
        self._classifier_factory = classifier_factory
        self._n_instances = n_instances
        self._runner_kwargs = dict(runner_kwargs)

    def cells(self) -> list[GridCell]:
        """The full cross-product, in deterministic order."""
        return [
            GridCell(stream=stream, detector=detector, seed=seed)
            for stream in self._streams
            for detector in self._detectors
            for seed in self._seeds
        ]

    def __len__(self) -> int:
        return len(self._streams) * len(self._detectors) * len(self._seeds)

    # ------------------------------------------------------------------ run
    def run(
        self,
        max_workers: int | None = None,
        backend: str = "process",
        progress: Callable[[GridCellResult], None] | None = None,
    ) -> GridResult:
        """Execute every cell and aggregate the results.

        Parameters
        ----------
        max_workers:
            Worker count for the parallel backends (default: executor's own).
        backend:
            A registered backend name — ``"process"`` (default),
            ``"thread"``, ``"serial"``, ``"cluster"`` — or an
            :class:`~repro.protocol.backends.ExecutionBackend` instance.
            The process backend requires picklable payloads and degrades to
            threads (with a warning) when pickling fails.
        progress:
            Optional callback invoked with every finished cell.
        """
        return GridResult(
            cells=run_cell_tasks(self.tasks(), backend, max_workers, progress)
        )

    # ------------------------------------------------------------ internals
    def tasks(self) -> list[CellTask]:
        """One :class:`CellTask` per grid cell, in deterministic order."""
        run_kwargs = {"n_instances": self._n_instances}
        return [
            CellTask(
                cell=cell,
                stream_factory=self._streams[cell.stream],
                detector_factory=self._detectors[cell.detector],
                classifier_factory=self._classifier_factory,
                runner_kwargs=self._runner_kwargs,
                run_kwargs=run_kwargs,
            )
            for cell in self.cells()
        ]
