"""Prequential (test-then-train) evaluation harness.

Reproduces the paper's experimental protocol: every instance is first used to
test the classifier (updating the windowed pmAUC / pmGM metrics), then handed
to the drift detector, and finally used to train the classifier.  When the
detector signals a drift the classifier is rebuilt and re-initialised from a
short buffer of the most recent instances (the usual warning-window protocol).
The runner also records where the detector fired, per-component timings, and
the drift-detection report against the stream's ground truth.

Three execution modes are provided:

* **instance mode** (``chunk_size=None``) — the classic loop, one
  :class:`~repro.streams.base.Instance` at a time;
* **chunked exact mode** (``chunk_size=c``) — bit-identical results to
  instance mode at chunk speed: the stream is pulled in vectorized chunks of
  ``c`` via :meth:`DataStream.generate_batch` (bit-identical to per-instance
  generation), the classifier chain runs through the bit-exact
  ``predict_fit_interleaved`` kernel, the detector consumes chunks through
  its chunk-exact ``step_batch``, and metrics fold in via ``update_batch``.
  Chunks execute optimistically; a mid-chunk drift rolls the detector back
  to a checkpoint and deterministically replays up to the drift row so the
  rebuilt classifier scores the remaining rows, exactly like the instance
  loop;
* **chunked batch mode** (``chunk_size=c, batch_mode=True``) — test-then-train
  at chunk granularity: the whole chunk is scored with
  ``predict_proba_batch``, stepped through ``step_batch``, and trained with
  ``partial_fit_batch``.  Every registry detector's ``step_batch`` is a
  NumPy-native kernel that is *chunk-exact* (bit-identical detections to
  per-instance stepping for the same prediction stream), so detection
  *positions* stay instance-granular.  A drift inside a chunk rebuilds the
  classifier before the post-drift rows are trained, but rows after a drift
  within the same chunk were already scored by the pre-drift classifier —
  the standard interleaved-chunks trade-off.  This is the fast path used by
  the throughput benchmarks; detectors that ignore the prediction stream
  (e.g. RBM-IM) produce identical detections in every mode.

Every mode is **checkpointable**: passing ``checkpoint_path`` to :meth:`run`
persists a :class:`~repro.evaluation.checkpoint.RunnerCheckpoint` (stream +
classifier + detector + metrics + loop bookkeeping) atomically at instance
boundaries, and a later invocation with the same configuration resumes from
it with results bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import copy
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Deque

import numpy as np

from repro.classifiers.base import StreamClassifier
from repro.core.snapshot import Snapshotable
from repro.detectors.base import DriftDetector
from repro.evaluation.checkpoint import RunnerCheckpoint
from repro.metrics.drift_eval import DriftDetectionReport, evaluate_detections
from repro.metrics.prequential import MetricSnapshot, PrequentialEvaluator
from repro.streams.base import DataStream
from repro.streams.scenarios import ScenarioStream

__all__ = ["RunResult", "PrequentialRunner"]

ClassifierFactory = Callable[[int, int], StreamClassifier]

#: Recent (x, y) pairs replayed into a freshly built classifier after a
#: drift-triggered reset.
_Replay = Deque[tuple[np.ndarray, int]]


def _extend_replay(replay: _Replay, rows: np.ndarray, labels: np.ndarray) -> None:
    """Extend the bounded replay deque with ``(x, int(y))`` pairs.

    The deque keeps only its last ``maxlen`` entries, so rows a large chunk
    would immediately push out again are never materialised as tuples.
    """
    maxlen = replay.maxlen
    if maxlen is not None and labels.shape[0] > maxlen:
        rows = rows[-maxlen:]
        labels = labels[-maxlen:]
    replay.extend(zip(rows, labels.tolist()))


@dataclass
class RunResult:
    """Outcome of one prequential run of (stream, classifier, detector).

    Attributes
    ----------
    pmauc, pmgm:
        Mean windowed pmAUC / pmG-mean over the run (Table III values).
    accuracy, kappa:
        Final windowed accuracy and Cohen's kappa.
    detections:
        Stream positions at which the detector signalled drifts.
    detected_classes:
        For each detection, the classes blamed by the detector (empty set for
        global/unattributed detections).
    drift_report:
        Match of detections against the stream's ground-truth drift points
        (``None`` when the stream has no ground truth).
    detector_time, classifier_time:
        Total seconds spent inside the detector and the classifier.
    n_instances:
        Number of instances processed.
    snapshots:
        Periodic metric snapshots along the stream.
    """

    stream_name: str
    detector_name: str
    pmauc: float
    pmgm: float
    accuracy: float
    kappa: float
    detections: list[int]
    detected_classes: list[set[int]]
    drift_report: DriftDetectionReport | None
    detector_time: float
    classifier_time: float
    n_instances: int
    snapshots: list[MetricSnapshot] = field(default_factory=list)


class PrequentialRunner:
    """Test-then-train evaluation loop with detector-triggered resets.

    Parameters
    ----------
    classifier_factory:
        Callable ``(n_features, n_classes) -> StreamClassifier`` used to build
        (and rebuild after drifts) the base classifier.
    window_size:
        Sliding-window length of the prequential metrics (1000 in the paper).
    pretrain_size:
        Number of initial instances used purely for training (and detector
        warm-up) before evaluation starts.
    rebuild_buffer:
        Number of most recent instances replayed into a freshly built
        classifier after a drift-triggered reset.
    snapshot_every:
        Spacing of metric snapshots.
    chunk_size:
        When set, instances are pulled from the stream in vectorized chunks
        of this size (see module docstring); ``None`` keeps the classic
        per-instance loop.
    batch_mode:
        With a chunk size, also batch the classifier/detector calls
        (test-then-train at chunk granularity) for maximum throughput.
    """

    def __init__(
        self,
        classifier_factory: ClassifierFactory,
        window_size: int = 1000,
        pretrain_size: int = 200,
        rebuild_buffer: int = 200,
        snapshot_every: int = 500,
        chunk_size: int | None = None,
        batch_mode: bool = False,
    ) -> None:
        if pretrain_size < 0 or rebuild_buffer < 0:
            raise ValueError("pretrain_size and rebuild_buffer must be >= 0")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1 or None")
        self._classifier_factory = classifier_factory
        self._window_size = window_size
        self._pretrain_size = pretrain_size
        self._rebuild_buffer = rebuild_buffer
        self._snapshot_every = snapshot_every
        self._chunk_size = chunk_size
        self._batch_mode = batch_mode

    # ----------------------------------------------------------------- run
    def run(
        self,
        stream: DataStream | ScenarioStream,
        detector: DriftDetector | None,
        n_instances: int | None = None,
        detector_name: str | None = None,
        drift_tolerance: int = 2_000,
        chunk_size: int | None = None,
        batch_mode: bool | None = None,
        checkpoint_path: "str | Path | None" = None,
        checkpoint_every: int | None = None,
    ) -> RunResult:
        """Evaluate one detector on one stream.

        Parameters
        ----------
        stream:
            A raw :class:`DataStream` or a :class:`ScenarioStream` (which also
            carries ground-truth drift points and a recommended length).
        detector:
            The drift detector under test, or ``None`` for a detector-less
            baseline (classifier never reset).
        n_instances:
            Number of instances to process; defaults to the scenario's
            recommended length or 10 000.
        chunk_size, batch_mode:
            Per-run overrides of the constructor's execution mode.
        checkpoint_path:
            When set, a :class:`~repro.evaluation.checkpoint.RunnerCheckpoint`
            is written atomically to this path at instance boundaries (chunk
            boundaries in the chunked modes) and — if the file already holds a
            checkpoint matching this exact run configuration — the run
            *resumes* from it, producing results bit-identical to an
            uninterrupted run.  A missing, torn, or mismatched checkpoint is
            ignored and the run starts from the beginning.
        checkpoint_every:
            Minimum number of instances between checkpoint writes; defaults
            to the chunk size (or 1000 in instance mode).
        """
        scenario: ScenarioStream | None = None
        if isinstance(stream, ScenarioStream):
            scenario = stream
            data_stream = scenario.stream
            if n_instances is None:
                n_instances = scenario.n_instances
            stream_name = scenario.name
        else:
            data_stream = stream
            stream_name = data_stream.name
        if n_instances is None:
            n_instances = 10_000
        chunk = self._chunk_size if chunk_size is None else chunk_size
        batched = self._batch_mode if batch_mode is None else batch_mode

        state = _RunState(
            classifier=self._classifier_factory(
                data_stream.n_features, data_stream.n_classes
            ),
            evaluator=PrequentialEvaluator(
                n_classes=data_stream.n_classes,
                window_size=self._window_size,
                snapshot_every=self._snapshot_every,
            ),
            replay=deque(maxlen=max(self._rebuild_buffer, 1)),
        )

        checkpointer: "_Checkpointer | None" = None
        start_at = 0
        if checkpoint_path is not None:
            meta = {
                "stream": stream_name,
                "detector": self._describe(detector),
                "n_instances": int(n_instances),
                "chunk_size": chunk,
                "batch_mode": bool(batched),
                "window_size": self._window_size,
                "pretrain_size": self._pretrain_size,
                "rebuild_buffer": self._rebuild_buffer,
                "snapshot_every": self._snapshot_every,
            }
            every = (
                int(checkpoint_every)
                if checkpoint_every is not None
                else (chunk or 1_000)
            )
            # Fail up front with a clear message, not mid-run inside a save:
            # checkpointing needs every bundled component to be snapshotable.
            for role, part in (
                ("stream", data_stream),
                ("detector", detector),
                ("classifier", state.classifier),
            ):
                if part is not None and not isinstance(part, Snapshotable):
                    raise TypeError(
                        f"checkpoint_path requires a Snapshotable {role}; "
                        f"{type(part).__name__} does not implement the "
                        "snapshot contract (repro.core.snapshot)"
                    )
            checkpointer = _Checkpointer(
                Path(checkpoint_path), every, meta, data_stream, detector
            )
            start_at = checkpointer.resume(state)

        if chunk is None:
            self._run_instance_mode(
                data_stream, detector, n_instances, state, start_at, checkpointer
            )
        elif batched:
            self._run_batch_mode(
                data_stream, detector, n_instances, chunk, state, start_at,
                checkpointer,
            )
        else:
            self._run_chunked_exact(
                data_stream, detector, n_instances, chunk, state, start_at,
                checkpointer,
            )

        drift_report = None
        if scenario is not None:
            drift_report = evaluate_detections(
                scenario.drift_points, state.detections, tolerance=drift_tolerance
            )

        return RunResult(
            stream_name=stream_name,
            detector_name=detector_name or self._describe(detector),
            pmauc=state.evaluator.mean_pmauc(),
            pmgm=state.evaluator.mean_pmgm(),
            accuracy=state.evaluator.accuracy(),
            kappa=state.evaluator.kappa(),
            detections=state.detections,
            detected_classes=state.detected_classes,
            drift_report=drift_report,
            detector_time=state.detector_time,
            classifier_time=state.classifier_time,
            n_instances=n_instances,
            snapshots=state.evaluator.snapshots,
        )

    # ----------------------------------------------------- execution modes
    def _run_instance_mode(
        self,
        data_stream: DataStream,
        detector: DriftDetector | None,
        n_instances: int,
        state: "_RunState",
        start_at: int = 0,
        checkpointer: "_Checkpointer | None" = None,
    ) -> None:
        """Classic loop: one Instance object at a time (baseline path)."""
        produced = start_at
        while produced < n_instances:
            try:
                instance = data_stream.next_instance()
            except StopIteration:
                break
            self._step_one(
                instance.x, int(instance.y), produced, detector, state
            )
            produced += 1
            if checkpointer is not None:
                checkpointer.maybe_save(produced, state)

    def _run_chunked_exact(
        self,
        data_stream: DataStream,
        detector: DriftDetector | None,
        n_instances: int,
        chunk: int,
        state: "_RunState",
        start_at: int = 0,
        checkpointer: "_Checkpointer | None" = None,
    ) -> None:
        """Vectorized chunk-exact mode: bit-identical to instance mode.

        The per-instance recurrence only matters at two points — the
        classifier's test-then-train chain and the detector's sequential
        state — so everything else runs on whole chunks: the stream is pulled
        via ``generate_batch`` (bit-identical to repeated ``next_instance``),
        the classifier chain runs through ``predict_fit_interleaved`` (whose
        contract is bit-equality with the per-row loop), the detector consumes
        the chunk through its chunk-exact ``step_batch`` kernel, and the
        metrics fold in via ``update_batch``.

        Drift-triggered classifier rebuilds are the one interaction that can
        invalidate a chunk mid-flight (rows after the drift must be rescored
        by the rebuilt classifier, and the detector must see those new
        predictions).  Chunks are therefore executed *optimistically*: the
        detector state is checkpointed, the whole remaining chunk is scored
        and stepped, and on the (rare) first drift flag the detector is rolled
        back and deterministically replayed up to the drift row, after which
        execution resumes behind the rebuilt classifier.  Detections, blamed
        classes, metrics, and snapshots are all identical to instance mode.
        """
        produced = start_at
        pretrain = self._pretrain_size
        while produced < n_instances:
            features, labels = data_stream.generate_batch(
                min(chunk, n_instances - produced)
            )
            n_rows = int(labels.shape[0])
            if n_rows == 0:
                break

            offset = 0
            if produced < pretrain:
                # Pretrain rows never touch the detector or the metrics; the
                # classifier chain stays scalar so its state is bit-identical.
                offset = min(pretrain - produced, n_rows)
                classifier = state.classifier
                start = time.perf_counter()
                for i in range(offset):
                    classifier.partial_fit(features[i], int(labels[i]))
                state.classifier_time += time.perf_counter() - start
                state.warm_x.append(features[:offset])
                state.warm_y.append(labels[:offset])
                _extend_replay(state.replay, features[:offset], labels[:offset])
            if (
                produced + offset == pretrain
                and offset < n_rows
                and detector is not None
                and not state.warm_started
                and state.warm_x
            ):
                # Fires while processing the row at the pretrain boundary,
                # exactly like the instance loop.
                start = time.perf_counter()
                detector.warm_start(
                    np.vstack(state.warm_x), np.concatenate(state.warm_y)
                )
                state.detector_time += time.perf_counter() - start
                state.warm_started = True

            seg = offset
            while seg < n_rows:
                drift_row = self._advance_exact_segment(
                    features[seg:], labels[seg:], produced + seg, detector, state
                )
                if drift_row < 0:
                    break
                seg += drift_row + 1
            produced += n_rows
            if checkpointer is not None:
                checkpointer.maybe_save(produced, state)

    def _advance_exact_segment(
        self,
        seg_x: np.ndarray,
        seg_y: np.ndarray,
        seg_start: int,
        detector: DriftDetector | None,
        state: "_RunState",
    ) -> int:
        """Optimistically run one post-pretrain segment of a chunk.

        Returns the in-segment row index of the first drift (after fully
        handling it: detector replay, metrics, classifier rebuild, and the
        drift row's train step), or ``-1`` when the whole segment completed
        without drifting.
        """
        n_rows = seg_y.shape[0]
        snapshot = None
        native = isinstance(detector, Snapshotable)
        if detector is not None and n_rows > 1:
            if native:
                # The versioned snapshot contract skips the detector's scratch
                # buffers (rebuilt on restore), so the rollback checkpoint is
                # cheaper than the ``deepcopy(detector.__dict__)`` it replaced
                # — and it is the same state model crash-resume uses.
                snapshot = detector.snapshot()
            else:
                try:
                    snapshot = copy.deepcopy(detector.__dict__)
                except Exception:  # lint: disable=broad-except -- deepcopy of arbitrary third-party detector state can raise anything; any failure safely routes to the exact scalar path
                    # Unsnapshottable detector state: fall back to the scalar
                    # per-instance recurrence for the rest of this chunk.
                    for i in range(n_rows):
                        self._step_one(
                            seg_x[i], int(seg_y[i]), seg_start + i, detector, state
                        )
                    return -1

        start = time.perf_counter()
        scores = state.classifier.predict_fit_interleaved(seg_x, seg_y)
        state.classifier_time += time.perf_counter() - start
        predictions = np.argmax(scores, axis=1).astype(np.int64)

        if detector is None:
            state.evaluator.update_batch(scores, seg_y, predictions)
            _extend_replay(state.replay, seg_x, seg_y)
            return -1

        start = time.perf_counter()
        flags = detector.step_batch(seg_x, seg_y, predictions)
        state.detector_time += time.perf_counter() - start
        drift_rows = np.flatnonzero(flags)
        if drift_rows.shape[0] == 0:
            state.evaluator.update_batch(scores, seg_y, predictions)
            _extend_replay(state.replay, seg_x, seg_y)
            return -1

        # Only the first flag is trustworthy: rows after it were scored by
        # the (about to be discarded) pre-drift classifier.
        row = int(drift_rows[0])
        if row != n_rows - 1:
            if native:
                detector.restore(snapshot)
            else:
                detector.__dict__.clear()
                detector.__dict__.update(snapshot)
            start = time.perf_counter()
            detector.step_batch(
                seg_x[: row + 1], seg_y[: row + 1], predictions[: row + 1]
            )
            state.detector_time += time.perf_counter() - start
        state.evaluator.update_batch(
            scores[: row + 1], seg_y[: row + 1], predictions[: row + 1]
        )
        _extend_replay(state.replay, seg_x[: row + 1], seg_y[: row + 1])
        state.detections.append(seg_start + row)
        state.detected_classes.append(set(detector.drifted_classes or set()))
        state.classifier = self._rebuild_classifier(
            seg_x.shape[1], state.evaluator.n_classes, state.replay
        )
        start = time.perf_counter()
        state.classifier.partial_fit(seg_x[row], int(seg_y[row]))
        state.classifier_time += time.perf_counter() - start
        return row

    def _run_batch_mode(
        self,
        data_stream: DataStream,
        detector: DriftDetector | None,
        n_instances: int,
        chunk: int,
        state: "_RunState",
        start_at: int = 0,
        checkpointer: "_Checkpointer | None" = None,
    ) -> None:
        """Chunk-granular test-then-train over the batch APIs."""
        produced = start_at
        while produced < n_instances:
            features, labels = data_stream.generate_batch(
                min(chunk, n_instances - produced)
            )
            n_rows = int(labels.shape[0])
            if n_rows == 0:
                break
            offset = 0
            if produced < self._pretrain_size:
                offset = min(self._pretrain_size - produced, n_rows)
                start = time.perf_counter()
                state.classifier.partial_fit_batch(
                    features[:offset], labels[:offset]
                )
                state.classifier_time += time.perf_counter() - start
                state.warm_x.append(features[:offset])
                state.warm_y.append(labels[:offset])
                _extend_replay(state.replay, features[:offset], labels[:offset])
            if (
                produced + offset >= self._pretrain_size
                and detector is not None
                and not state.warm_started
                and state.warm_x
            ):
                start = time.perf_counter()
                detector.warm_start(
                    np.vstack(state.warm_x), np.concatenate(state.warm_y)
                )
                state.detector_time += time.perf_counter() - start
                state.warm_started = True
            if offset >= n_rows:
                produced += n_rows
                if checkpointer is not None:
                    checkpointer.maybe_save(produced, state)
                continue

            chunk_x = features[offset:]
            chunk_y = labels[offset:]
            start = time.perf_counter()
            scores = state.classifier.predict_proba_batch(chunk_x)
            state.classifier_time += time.perf_counter() - start
            predictions = np.argmax(scores, axis=1).astype(np.int64)
            state.evaluator.update_batch(scores, chunk_y, predictions)

            last_drift_row = -1
            if detector is not None:
                start = time.perf_counter()
                flags = detector.step_batch(chunk_x, chunk_y, predictions)
                state.detector_time += time.perf_counter() - start
                drift_rows = np.flatnonzero(flags)
                if drift_rows.shape[0]:
                    blamed = detector.detection_classes[-drift_rows.shape[0] :]
                    for row, classes in zip(drift_rows, blamed):
                        state.detections.append(produced + offset + int(row))
                        state.detected_classes.append(set(classes or set()))
                    last_drift_row = int(drift_rows[-1])

            if last_drift_row >= 0:
                _extend_replay(
                    state.replay,
                    chunk_x[: last_drift_row + 1],
                    chunk_y[: last_drift_row + 1],
                )
                state.classifier = self._rebuild_classifier(
                    data_stream.n_features, data_stream.n_classes, state.replay
                )
                train_x = chunk_x[last_drift_row + 1 :]
                train_y = chunk_y[last_drift_row + 1 :]
            else:
                train_x = chunk_x
                train_y = chunk_y
            if train_y.shape[0]:
                start = time.perf_counter()
                state.classifier.partial_fit_batch(train_x, train_y)
                state.classifier_time += time.perf_counter() - start
                _extend_replay(state.replay, train_x, train_y)
            produced += n_rows
            if checkpointer is not None:
                checkpointer.maybe_save(produced, state)

    # ------------------------------------------------------------ internals
    def _step_one(
        self,
        x: np.ndarray,
        y_true: int,
        position: int,
        detector: DriftDetector | None,
        state: "_RunState",
    ) -> None:
        """One test-then-train step shared by instance and exact modes."""
        state.replay.append((x, y_true))

        if position < self._pretrain_size:
            start = time.perf_counter()
            state.classifier.partial_fit(x, y_true)
            state.classifier_time += time.perf_counter() - start
            state.warm_x.append(x)
            state.warm_y.append(y_true)
            return
        if (
            position == self._pretrain_size
            and detector is not None
            and not state.warm_started
            and state.warm_x
        ):
            start = time.perf_counter()
            detector.warm_start(np.vstack(state.warm_x), np.asarray(state.warm_y))
            state.detector_time += time.perf_counter() - start
            state.warm_started = True

        # ---- test
        start = time.perf_counter()
        scores = state.classifier.predict_proba(x)
        y_pred = int(np.argmax(scores))
        state.classifier_time += time.perf_counter() - start
        state.evaluator.update(scores, y_true, y_pred)

        # ---- detect
        if detector is not None:
            start = time.perf_counter()
            drifted = detector.step(x, y_true, y_pred)
            state.detector_time += time.perf_counter() - start
            if drifted:
                state.detections.append(position)
                state.detected_classes.append(set(detector.drifted_classes or set()))
                state.classifier = self._rebuild_classifier(
                    x.shape[0], state.evaluator.n_classes, state.replay
                )

        # ---- train
        start = time.perf_counter()
        state.classifier.partial_fit(x, y_true)
        state.classifier_time += time.perf_counter() - start

    @staticmethod
    def _describe(detector: DriftDetector | None) -> str:
        if detector is None:
            return "none"
        return type(detector).__name__

    def _rebuild_classifier(
        self, n_features: int, n_classes: int, replay: _Replay
    ) -> StreamClassifier:
        """Build a fresh classifier and replay the recent buffer into it."""
        classifier = self._classifier_factory(n_features, n_classes)
        for x, y in replay:
            classifier.partial_fit(x, int(y))
        return classifier


@dataclass
class _RunState:
    """Mutable accumulators shared by the execution modes."""

    classifier: StreamClassifier
    evaluator: PrequentialEvaluator
    replay: _Replay
    detections: list[int] = field(default_factory=list)
    detected_classes: list[set[int]] = field(default_factory=list)
    detector_time: float = 0.0
    classifier_time: float = 0.0
    warm_x: list[np.ndarray] = field(default_factory=list)
    warm_y: list = field(default_factory=list)
    warm_started: bool = False


class _Checkpointer:
    """Owns one checkpoint file for one run: resume on entry, periodic saves.

    Saves happen only at the instance boundaries the execution modes already
    stop at (chunk boundaries in the chunked modes), so a resumed run
    re-enters its loop exactly where the uninterrupted run would have been —
    which, together with chunk-exact kernels and lossless component
    snapshots, is what makes resume bit-identical.
    """

    def __init__(
        self,
        path: Path,
        every: int,
        meta: dict,
        data_stream: DataStream,
        detector: DriftDetector | None,
    ) -> None:
        if every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        self._path = path
        self._every = every
        self._meta = meta
        self._stream = data_stream
        self._detector = detector
        self._saved_at = 0

    def resume(self, state: _RunState) -> int:
        """Apply a matching persisted checkpoint; returns the start position."""
        checkpoint = RunnerCheckpoint.load(self._path)
        if checkpoint is None or not checkpoint.matches(
            self._meta, self._stream, self._detector, state
        ):
            return 0
        produced = checkpoint.apply(self._stream, self._detector, state)
        self._saved_at = produced
        return produced

    def maybe_save(self, produced: int, state: _RunState) -> None:
        """Persist a cut if at least ``every`` instances passed since the last."""
        if produced - self._saved_at < self._every:
            return
        RunnerCheckpoint.capture(
            self._meta, produced, self._stream, self._detector, state
        ).save(self._path)
        self._saved_at = produced
