"""Prequential (test-then-train) evaluation harness.

Reproduces the paper's experimental protocol: every instance is first used to
test the classifier (updating the windowed pmAUC / pmGM metrics), then handed
to the drift detector, and finally used to train the classifier.  When the
detector signals a drift the classifier is rebuilt and re-initialised from a
short buffer of the most recent instances (the usual warning-window protocol).
The runner also records where the detector fired, per-component timings, and
the drift-detection report against the stream's ground truth.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

from repro.classifiers.base import StreamClassifier
from repro.detectors.base import DriftDetector
from repro.metrics.drift_eval import DriftDetectionReport, evaluate_detections
from repro.metrics.prequential import MetricSnapshot, PrequentialEvaluator
from repro.streams.base import DataStream, Instance
from repro.streams.scenarios import ScenarioStream

__all__ = ["RunResult", "PrequentialRunner"]

ClassifierFactory = Callable[[int, int], StreamClassifier]


@dataclass
class RunResult:
    """Outcome of one prequential run of (stream, classifier, detector).

    Attributes
    ----------
    pmauc, pmgm:
        Mean windowed pmAUC / pmG-mean over the run (Table III values).
    accuracy, kappa:
        Final windowed accuracy and Cohen's kappa.
    detections:
        Stream positions at which the detector signalled drifts.
    detected_classes:
        For each detection, the classes blamed by the detector (empty set for
        global/unattributed detections).
    drift_report:
        Match of detections against the stream's ground-truth drift points
        (``None`` when the stream has no ground truth).
    detector_time, classifier_time:
        Total seconds spent inside the detector and the classifier.
    n_instances:
        Number of instances processed.
    snapshots:
        Periodic metric snapshots along the stream.
    """

    stream_name: str
    detector_name: str
    pmauc: float
    pmgm: float
    accuracy: float
    kappa: float
    detections: list[int]
    detected_classes: list[set[int]]
    drift_report: DriftDetectionReport | None
    detector_time: float
    classifier_time: float
    n_instances: int
    snapshots: list[MetricSnapshot] = field(default_factory=list)


class PrequentialRunner:
    """Test-then-train evaluation loop with detector-triggered resets.

    Parameters
    ----------
    classifier_factory:
        Callable ``(n_features, n_classes) -> StreamClassifier`` used to build
        (and rebuild after drifts) the base classifier.
    window_size:
        Sliding-window length of the prequential metrics (1000 in the paper).
    pretrain_size:
        Number of initial instances used purely for training (and detector
        warm-up) before evaluation starts.
    rebuild_buffer:
        Number of most recent instances replayed into a freshly built
        classifier after a drift-triggered reset.
    snapshot_every:
        Spacing of metric snapshots.
    """

    def __init__(
        self,
        classifier_factory: ClassifierFactory,
        window_size: int = 1000,
        pretrain_size: int = 200,
        rebuild_buffer: int = 200,
        snapshot_every: int = 500,
    ) -> None:
        if pretrain_size < 0 or rebuild_buffer < 0:
            raise ValueError("pretrain_size and rebuild_buffer must be >= 0")
        self._classifier_factory = classifier_factory
        self._window_size = window_size
        self._pretrain_size = pretrain_size
        self._rebuild_buffer = rebuild_buffer
        self._snapshot_every = snapshot_every

    # ----------------------------------------------------------------- run
    def run(
        self,
        stream: DataStream | ScenarioStream,
        detector: DriftDetector | None,
        n_instances: int | None = None,
        detector_name: str | None = None,
        drift_tolerance: int = 2_000,
    ) -> RunResult:
        """Evaluate one detector on one stream.

        Parameters
        ----------
        stream:
            A raw :class:`DataStream` or a :class:`ScenarioStream` (which also
            carries ground-truth drift points and a recommended length).
        detector:
            The drift detector under test, or ``None`` for a detector-less
            baseline (classifier never reset).
        n_instances:
            Number of instances to process; defaults to the scenario's
            recommended length or 10 000.
        """
        scenario: ScenarioStream | None = None
        if isinstance(stream, ScenarioStream):
            scenario = stream
            data_stream = scenario.stream
            if n_instances is None:
                n_instances = scenario.n_instances
            stream_name = scenario.name
        else:
            data_stream = stream
            stream_name = data_stream.name
        if n_instances is None:
            n_instances = 10_000

        n_features = data_stream.n_features
        n_classes = data_stream.n_classes
        classifier = self._classifier_factory(n_features, n_classes)
        evaluator = PrequentialEvaluator(
            n_classes=n_classes,
            window_size=self._window_size,
            snapshot_every=self._snapshot_every,
        )
        replay: deque[Instance] = deque(maxlen=max(self._rebuild_buffer, 1))
        detections: list[int] = []
        detected_classes: list[set[int]] = []
        detector_time = 0.0
        classifier_time = 0.0

        instances = self._iterate(data_stream, n_instances)
        warm_x: list[np.ndarray] = []
        warm_y: list[int] = []

        for position, instance in enumerate(instances):
            x, y_true = instance.x, instance.y
            replay.append(instance)

            if position < self._pretrain_size:
                start = time.perf_counter()
                classifier.partial_fit(x, y_true)
                classifier_time += time.perf_counter() - start
                warm_x.append(x)
                warm_y.append(y_true)
                continue
            if position == self._pretrain_size and detector is not None and warm_x:
                start = time.perf_counter()
                detector.warm_start(np.vstack(warm_x), np.asarray(warm_y))
                detector_time += time.perf_counter() - start

            # ---- test
            start = time.perf_counter()
            scores = classifier.predict_proba(x)
            y_pred = int(np.argmax(scores))
            classifier_time += time.perf_counter() - start
            evaluator.update(scores, y_true, y_pred)

            # ---- detect
            if detector is not None:
                start = time.perf_counter()
                drifted = detector.step(x, y_true, y_pred)
                detector_time += time.perf_counter() - start
                if drifted:
                    detections.append(position)
                    detected_classes.append(set(detector.drifted_classes or set()))
                    classifier = self._rebuild_classifier(
                        n_features, n_classes, replay
                    )

            # ---- train
            start = time.perf_counter()
            classifier.partial_fit(x, y_true)
            classifier_time += time.perf_counter() - start

        drift_report = None
        if scenario is not None:
            drift_report = evaluate_detections(
                scenario.drift_points, detections, tolerance=drift_tolerance
            )

        return RunResult(
            stream_name=stream_name,
            detector_name=detector_name or self._describe(detector),
            pmauc=evaluator.mean_pmauc(),
            pmgm=evaluator.mean_pmgm(),
            accuracy=evaluator.accuracy(),
            kappa=evaluator.kappa(),
            detections=detections,
            detected_classes=detected_classes,
            drift_report=drift_report,
            detector_time=detector_time,
            classifier_time=classifier_time,
            n_instances=n_instances,
            snapshots=evaluator.snapshots,
        )

    # ------------------------------------------------------------ internals
    @staticmethod
    def _describe(detector: DriftDetector | None) -> str:
        if detector is None:
            return "none"
        return type(detector).__name__

    @staticmethod
    def _iterate(stream: DataStream, n_instances: int) -> Iterable[Instance]:
        produced = 0
        while produced < n_instances:
            try:
                yield stream.next_instance()
            except StopIteration:
                return
            produced += 1

    def _rebuild_classifier(
        self, n_features: int, n_classes: int, replay: deque[Instance]
    ) -> StreamClassifier:
        """Build a fresh classifier and replay the recent buffer into it."""
        classifier = self._classifier_factory(n_features, n_classes)
        for instance in replay:
            classifier.partial_fit(instance.x, instance.y)
        return classifier
