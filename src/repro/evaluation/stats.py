"""Statistical analysis used in the paper's evaluation.

* Friedman ranking test over (datasets x methods) score matrices;
* Bonferroni-Dunn post-hoc test with critical distance (Figs. 4-5);
* Nemenyi critical distance (for all-pairs comparisons);
* Bayesian signed test (Benavoli et al., 2017) for the pairwise probability
  that one method is practically better / equivalent / worse than another
  (Figs. 6-7).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

__all__ = [
    "average_ranks",
    "FriedmanResult",
    "friedman_test",
    "bonferroni_dunn_critical_distance",
    "nemenyi_critical_distance",
    "BonferroniDunnResult",
    "bonferroni_dunn_test",
    "BayesianSignedTestResult",
    "bayesian_signed_test",
]


def average_ranks(scores: np.ndarray, higher_is_better: bool = True) -> np.ndarray:
    """Average rank of each method (columns) over the datasets (rows).

    Rank 1 is the best method; ties receive midranks, following Demsar (2006).
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 2:
        raise ValueError("scores must be a (datasets x methods) matrix")
    data = -scores if higher_is_better else scores
    ranks = np.apply_along_axis(stats.rankdata, 1, data)
    return ranks.mean(axis=0)


@dataclass(frozen=True)
class FriedmanResult:
    """Friedman test outcome plus the per-method average ranks."""

    statistic: float
    p_value: float
    average_ranks: np.ndarray
    n_datasets: int
    n_methods: int

    @property
    def significant(self) -> bool:
        return self.p_value < 0.05


def friedman_test(scores: np.ndarray, higher_is_better: bool = True) -> FriedmanResult:
    """Friedman chi-square test over a (datasets x methods) score matrix."""
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 2 or scores.shape[1] < 3:
        raise ValueError("need a matrix with at least 3 methods (columns)")
    if scores.shape[0] < 2:
        raise ValueError("need at least 2 datasets (rows)")
    statistic, p_value = stats.friedmanchisquare(*scores.T)
    return FriedmanResult(
        statistic=float(statistic),
        p_value=float(p_value),
        average_ranks=average_ranks(scores, higher_is_better),
        n_datasets=scores.shape[0],
        n_methods=scores.shape[1],
    )


def bonferroni_dunn_critical_distance(
    n_methods: int, n_datasets: int, alpha: float = 0.05
) -> float:
    """Critical distance of the Bonferroni-Dunn post-hoc test (vs a control).

    ``CD = q_alpha * sqrt(k (k + 1) / (6 N))`` with
    ``q_alpha = z_{alpha / (2 (k - 1))}`` (Demsar, 2006).
    """
    if n_methods < 2 or n_datasets < 2:
        raise ValueError("need at least 2 methods and 2 datasets")
    q_alpha = stats.norm.ppf(1.0 - alpha / (2.0 * (n_methods - 1)))
    return float(q_alpha * np.sqrt(n_methods * (n_methods + 1) / (6.0 * n_datasets)))


#: Two-tailed Nemenyi q_alpha values at alpha=0.05 for k = 2..10 (Demsar 2006).
_NEMENYI_Q_05 = {
    2: 1.960,
    3: 2.343,
    4: 2.569,
    5: 2.728,
    6: 2.850,
    7: 2.949,
    8: 3.031,
    9: 3.102,
    10: 3.164,
}


def nemenyi_critical_distance(n_methods: int, n_datasets: int) -> float:
    """Nemenyi all-pairs critical distance at alpha = 0.05 (k <= 10)."""
    if n_methods not in _NEMENYI_Q_05:
        raise ValueError("Nemenyi table covers 2..10 methods")
    q_alpha = _NEMENYI_Q_05[n_methods]
    return float(q_alpha * np.sqrt(n_methods * (n_methods + 1) / (6.0 * n_datasets)))


@dataclass(frozen=True)
class BonferroniDunnResult:
    """Outcome of the Bonferroni-Dunn comparison against a control method."""

    control: str
    critical_distance: float
    average_ranks: dict[str, float]
    significantly_worse: list[str]

    def is_significantly_worse(self, method: str) -> bool:
        return method in self.significantly_worse


def bonferroni_dunn_test(
    scores: np.ndarray,
    method_names: list[str],
    control: str,
    alpha: float = 0.05,
    higher_is_better: bool = True,
) -> BonferroniDunnResult:
    """Compare every method against a control using Bonferroni-Dunn.

    A method is significantly worse than the control when its average rank
    exceeds the control's by more than the critical distance.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.shape[1] != len(method_names):
        raise ValueError("method_names length must match the number of columns")
    if control not in method_names:
        raise ValueError(f"control {control!r} not among method_names")
    ranks = average_ranks(scores, higher_is_better)
    critical = bonferroni_dunn_critical_distance(
        scores.shape[1], scores.shape[0], alpha
    )
    rank_of = dict(zip(method_names, ranks))
    control_rank = rank_of[control]
    worse = [
        name
        for name, rank in rank_of.items()
        if name != control and rank - control_rank > critical
    ]
    return BonferroniDunnResult(
        control=control,
        critical_distance=critical,
        average_ranks={name: float(rank) for name, rank in rank_of.items()},
        significantly_worse=worse,
    )


@dataclass(frozen=True)
class BayesianSignedTestResult:
    """Posterior probabilities of the Bayesian signed test (Benavoli 2017).

    ``p_left`` is the probability that the first method is practically better,
    ``p_rope`` the probability of practical equivalence (difference inside the
    region of practical equivalence), and ``p_right`` the probability that the
    second method is practically better.
    """

    p_left: float
    p_rope: float
    p_right: float
    rope: float

    @property
    def winner(self) -> str:
        best = max(
            ("left", self.p_left), ("rope", self.p_rope), ("right", self.p_right),
            key=lambda item: item[1],
        )
        return best[0]


def bayesian_signed_test(
    scores_a: np.ndarray,
    scores_b: np.ndarray,
    rope: float = 0.01,
    prior_strength: float = 1.0,
    n_samples: int = 50_000,
    seed: int | None = 0,
) -> BayesianSignedTestResult:
    """Bayesian (Dirichlet) signed test between two paired score vectors.

    Implements the Bayesian version of the sign test: the differences
    ``a - b`` are classified as left (> rope), rope (|diff| <= rope), or right
    (< -rope); a Dirichlet posterior over the three probabilities (with a
    prior pseudo-count placed on the rope) is sampled and the probability that
    each region dominates is reported.
    """
    scores_a = np.asarray(scores_a, dtype=np.float64)
    scores_b = np.asarray(scores_b, dtype=np.float64)
    if scores_a.shape != scores_b.shape or scores_a.ndim != 1:
        raise ValueError("scores_a and scores_b must be 1-D arrays of equal length")
    if rope < 0.0:
        raise ValueError("rope must be non-negative")
    differences = scores_a - scores_b
    counts = np.array(
        [
            float(np.sum(differences > rope)),
            float(np.sum(np.abs(differences) <= rope)),
            float(np.sum(differences < -rope)),
        ]
    )
    alpha = counts + np.array([0.0, prior_strength, 0.0]) + 1e-6
    rng = np.random.default_rng(seed)
    samples = rng.dirichlet(alpha, size=n_samples)
    winners = np.argmax(samples, axis=1)
    p_left = float(np.mean(winners == 0))
    p_rope = float(np.mean(winners == 1))
    p_right = float(np.mean(winners == 2))
    return BayesianSignedTestResult(p_left=p_left, p_rope=p_rope, p_right=p_right, rope=rope)
