"""Versioned snapshot/restore contract shared by every stateful layer.

Every stateful object in the stack — windows, RBMs, detectors, classifiers,
streams, fleets, evaluators, and the prequential runner itself — exposes the
same three methods:

* ``snapshot() -> dict`` — a JSON-compatible dict (safe to pass through
  :func:`repro.core.jsonio.dumps_strict`) capturing the *full physical*
  state, schema-versioned per class;
* ``restore(state)`` — load a snapshot back into an existing, identically
  configured instance (always available);
* ``from_snapshot(state)`` — reconstruct an instance from a snapshot alone
  (only for classes whose constructor inputs are fully contained in the
  state; streams hold un-serialisable factories and are restore-in-place
  only).

The guarantee is **bit-identical resume**: restoring a snapshot and replaying
the remaining input produces exactly the outputs of the uninterrupted run.
That is why the codec below is lossless where it matters:

* NumPy arrays are encoded as base64 of their raw bytes plus dtype/shape —
  no float-to-decimal round-trip, no dtype widening;
* ``np.random.Generator`` objects are encoded via their bit-generator state
  dict (arbitrary-precision ints, which Python's JSON round-trips exactly);
* non-finite Python floats are tagged (``{"__f64__": "inf"}``) because
  :func:`~repro.core.jsonio.dumps_strict` deliberately serialises bare
  non-finite floats as ``null`` — and legitimate detector state is full of
  them (DDM's ``p_min`` starts at ``inf``, RBM-IM's per-class errors at
  ``NaN``);
* tuples, sets, deques (with ``maxlen``) and non-string-keyed dicts are
  tagged so they decode back to the exact container type the hot loops
  expect.

Version policy: ``SNAPSHOT_VERSION`` is per-class and bumped whenever the
state layout changes; :meth:`Snapshotable.restore` requires an exact match
and raises :class:`SnapshotError` otherwise.  There is deliberately no
migration machinery — a snapshot is a crash-resume/rollback artifact, not an
archival format.
"""

from __future__ import annotations

import base64
import dataclasses
import math
from collections import deque

import numpy as np

__all__ = [
    "SnapshotError",
    "Snapshotable",
    "encode_state",
    "decode_state",
    "register_dataclass",
    "snapshotable_class",
]

_ND = "__nd__"
_GEN = "__gen__"
_F64 = "__f64__"
_TUPLE = "__tuple__"
_SET = "__set__"
_DEQUE = "__deque__"
_MAP = "__map__"
_SNAP = "__snap__"
_DC = "__dc__"

_TAGS = frozenset({_ND, _GEN, _F64, _TUPLE, _SET, _DEQUE, _MAP, _SNAP, _DC})


class SnapshotError(ValueError):
    """A snapshot cannot be produced, decoded, or applied."""


#: kind -> Snapshotable subclass, populated by ``__init_subclass__``.
_CLASSES: dict[str, type] = {}

#: name -> registered plain dataclass (configs, monitors, metric snapshots).
_DATACLASSES: dict[str, type] = {}


def snapshotable_class(kind: str) -> type:
    """The registered :class:`Snapshotable` subclass for ``kind``."""
    try:
        return _CLASSES[kind]
    except KeyError:
        raise SnapshotError(f"unknown snapshot kind {kind!r}") from None


def register_dataclass(cls):
    """Allow instances of dataclass ``cls`` inside snapshot state.

    Encoding walks :func:`dataclasses.fields` with ``getattr`` (never
    ``asdict``, which would deep-copy and mangle nested Snapshotables);
    decoding calls ``cls(**fields)``.  Returns ``cls`` so it can be used as a
    decorator.
    """
    if not dataclasses.is_dataclass(cls) or not isinstance(cls, type):
        raise SnapshotError(f"{cls!r} is not a dataclass type")
    _DATACLASSES[cls.__name__] = cls
    return cls


# --------------------------------------------------------------------- codec
def _encode_float(value: float):
    if math.isfinite(value):
        return value
    if math.isnan(value):
        return {_F64: "nan"}
    return {_F64: "inf" if value > 0 else "-inf"}


def _encode_ndarray(value: np.ndarray) -> dict:
    if value.dtype == object:
        raise SnapshotError("object-dtype arrays are not snapshotable")
    contiguous = np.ascontiguousarray(value)
    return {
        _ND: {
            "dtype": value.dtype.str,
            "shape": list(value.shape),
            "data": base64.b64encode(contiguous.tobytes()).decode("ascii"),
        }
    }


def _decode_ndarray(payload: dict) -> np.ndarray:
    raw = base64.b64decode(payload["data"])
    array = np.frombuffer(raw, dtype=np.dtype(payload["dtype"]))
    return array.reshape(tuple(payload["shape"])).copy()


def _decode_generator(payload) -> np.random.Generator:
    state = decode_state(payload)
    bit_generator_cls = getattr(np.random, state["bit_generator"])
    generator = np.random.Generator(bit_generator_cls())
    generator.bit_generator.state = state
    return generator


def encode_state(value):
    """Recursively encode ``value`` into strict-JSON-safe structures."""
    if value is None:
        return None
    kind = type(value)
    if kind is bool or kind is int or kind is str:
        return value
    if kind is float:
        return _encode_float(value)
    if isinstance(value, np.ndarray):
        return _encode_ndarray(value)
    if isinstance(value, np.generic):
        # NumPy scalars collapse to their exact-value Python equivalents;
        # both are 64-bit doubles / arbitrary-precision ints, so arithmetic
        # on the restored value is bit-identical.
        return encode_state(value.item())
    if isinstance(value, np.random.Generator):
        return {_GEN: encode_state(value.bit_generator.state)}
    if isinstance(value, Snapshotable):
        return {_SNAP: value.snapshot()}
    if kind.__name__ in _DATACLASSES and _DATACLASSES[kind.__name__] is kind:
        fields = {
            field.name: encode_state(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
        return {_DC: {"cls": kind.__name__, "fields": fields}}
    if isinstance(value, dict):
        keys_are_safe = all(type(key) is str for key in value) and not (
            len(value) == 1 and next(iter(value)) in _TAGS
        )
        if keys_are_safe:
            return {key: encode_state(item) for key, item in value.items()}
        return {
            _MAP: [
                [encode_state(key), encode_state(item)]
                for key, item in value.items()
            ]
        }
    if isinstance(value, list):
        return [encode_state(item) for item in value]
    if isinstance(value, tuple):
        return {_TUPLE: [encode_state(item) for item in value]}
    if isinstance(value, (set, frozenset)):
        return {_SET: [encode_state(item) for item in sorted(value)]}
    if isinstance(value, deque):
        return {
            _DEQUE: {
                "maxlen": value.maxlen,
                "items": [encode_state(item) for item in value],
            }
        }
    raise SnapshotError(f"cannot snapshot value of type {kind.__name__}")


def decode_state(value):
    """Inverse of :func:`encode_state`.

    Tagged nested :class:`Snapshotable` payloads decode to a fresh instance
    when the class is self-contained; otherwise the raw snapshot dict is
    returned so the owner can ``restore`` it into an existing instance.
    """
    if isinstance(value, dict):
        if len(value) == 1:
            (tag,) = value
            if tag in _TAGS:
                return _decode_tag(tag, value[tag])
        return {key: decode_state(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_state(item) for item in value]
    return value


def _decode_tag(tag: str, payload):
    if tag == _ND:
        return _decode_ndarray(payload)
    if tag == _F64:
        return {"nan": math.nan, "inf": math.inf, "-inf": -math.inf}[payload]
    if tag == _GEN:
        return _decode_generator(payload)
    if tag == _TUPLE:
        return tuple(decode_state(item) for item in payload)
    if tag == _SET:
        return {decode_state(item) for item in payload}
    if tag == _DEQUE:
        return deque(
            (decode_state(item) for item in payload["items"]),
            maxlen=payload["maxlen"],
        )
    if tag == _MAP:
        return {
            decode_state(key): decode_state(item) for key, item in payload
        }
    if tag == _SNAP:
        cls = snapshotable_class(payload.get("kind"))
        if cls.SNAPSHOT_SELF_CONTAINED:
            return cls.from_snapshot(payload)
        return payload
    if tag == _DC:
        try:
            cls = _DATACLASSES[payload["cls"]]
        except KeyError:
            raise SnapshotError(
                f"unknown snapshot dataclass {payload['cls']!r}"
            ) from None
        return cls(
            **{
                name: decode_state(item)
                for name, item in payload["fields"].items()
            }
        )
    raise SnapshotError(f"unknown snapshot tag {tag!r}")


# ------------------------------------------------------------------ contract
class Snapshotable:
    """Mixin providing the versioned snapshot/restore contract.

    The default implementation snapshots every instance attribute (``__dict__``
    or ``__slots__`` across the MRO) except names listed in
    ``_SNAPSHOT_EXCLUDE`` — the right behaviour for almost every class in the
    stack, whose attributes are numbers, arrays, containers, and nested
    Snapshotables.  Classes holding un-encodable members (streams with
    factory callables) override :meth:`_snapshot_state` /
    :meth:`_restore_state` instead, and classes with derived scratch buffers
    rebuild them in :meth:`_after_restore`.
    """

    __slots__ = ()

    #: Bumped whenever a class's state layout changes; restore requires an
    #: exact match (no migrations).
    SNAPSHOT_VERSION = 1

    #: Whether ``from_snapshot`` can rebuild an instance from state alone.
    #: False for classes holding un-serialisable constructor inputs
    #: (streams and samplers hold concept factories) — those are
    #: restore-in-place only.
    SNAPSHOT_SELF_CONTAINED = True

    #: Attribute names skipped by the generic state walk (scratch buffers,
    #: caches rebuilt by ``_after_restore``).  Merged across the MRO.
    _SNAPSHOT_EXCLUDE: frozenset = frozenset()

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        _CLASSES[cls.__name__] = cls

    # ------------------------------------------------------------- public API
    def snapshot(self) -> dict:
        """Full state as a strict-JSON-compatible dict."""
        return {
            "kind": type(self).__name__,
            "version": type(self).SNAPSHOT_VERSION,
            "state": encode_state(self._snapshot_state()),
        }

    def restore(self, snapshot: dict) -> None:
        """Load ``snapshot`` into this (identically configured) instance."""
        if not isinstance(snapshot, dict) or "state" not in snapshot:
            raise SnapshotError("malformed snapshot payload")
        kind = snapshot.get("kind")
        if kind != type(self).__name__:
            raise SnapshotError(
                f"snapshot kind {kind!r} does not match {type(self).__name__!r}"
            )
        version = snapshot.get("version")
        if version != type(self).SNAPSHOT_VERSION:
            raise SnapshotError(
                f"snapshot version {version!r} of {kind!r} does not match "
                f"expected {type(self).SNAPSHOT_VERSION!r}"
            )
        self._restore_state(decode_state(snapshot["state"]))
        self._after_restore()

    @classmethod
    def from_snapshot(cls, snapshot: dict):
        """Reconstruct an instance from ``snapshot`` alone."""
        target = snapshotable_class(snapshot.get("kind"))
        if cls is not Snapshotable and not issubclass(target, cls):
            raise SnapshotError(
                f"snapshot kind {snapshot.get('kind')!r} is not a {cls.__name__}"
            )
        if not target.SNAPSHOT_SELF_CONTAINED:
            raise SnapshotError(
                f"{target.__name__} snapshots are restore-in-place only"
            )
        instance = target.__new__(target)
        instance.restore(snapshot)
        return instance

    # ------------------------------------------------------ state walk hooks
    @classmethod
    def _snapshot_exclude(cls) -> frozenset:
        merged: set = set()
        for base in cls.__mro__:
            merged |= getattr(base, "_SNAPSHOT_EXCLUDE", frozenset())
        return frozenset(merged)

    def _state_attr_names(self) -> list:
        instance_dict = getattr(self, "__dict__", None)
        names = list(instance_dict) if instance_dict else []
        seen = set(names)
        for base in type(self).__mro__:
            for slot in getattr(base, "__slots__", ()):
                if slot in seen or slot in ("__dict__", "__weakref__"):
                    continue
                seen.add(slot)
                if hasattr(self, slot):
                    names.append(slot)
        return names

    def _snapshot_state(self) -> dict:
        exclude = self._snapshot_exclude()
        return {
            name: getattr(self, name)
            for name in self._state_attr_names()
            if name not in exclude
        }

    def _restore_state(self, state: dict) -> None:
        for name, value in state.items():
            setattr(self, name, value)

    def _after_restore(self) -> None:
        """Rebuild excluded scratch state after a restore (hook)."""
