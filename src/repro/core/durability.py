"""Crash-durability primitives shared by every on-disk sink.

The stores (:mod:`repro.protocol.store`, :mod:`repro.protocol.sharded_store`)
and any other component that persists results follow one write discipline:

* bytes are written to a ``.tmp-*`` sibling, flushed, and fsynced;
* the tmp file is :func:`os.replace`\\ d over the final path;
* the containing **directory** is fsynced, because without that the rename
  itself can vanish on power failure even though the file's bytes were
  durable.

These helpers used to live as private functions inside the JSON results
store; they are hoisted here (stdlib-only, no heavy imports) so every layer
— including :meth:`repro.evaluation.grid.GridResult.save_json` — can share
them without importing the protocol package.  The ``durability`` rule of
:mod:`repro.analysis` enforces the pattern: any function calling
``os.replace`` must also call :func:`fsync_dir` (or delegate to
:func:`atomic_write_text`, which does).
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

__all__ = ["fsync_dir", "atomic_write_text"]

_TMP_PREFIX = ".tmp-"


def fsync_dir(directory: "str | os.PathLike[str]") -> None:
    """fsync a directory so renames/creates/unlinks in it survive power loss.

    POSIX-guarded: platforms that cannot open or fsync a directory (Windows,
    some network filesystems) silently skip — the data files themselves are
    still fsynced, so this only narrows the power-failure window, it never
    breaks a write.
    """
    if not hasattr(os, "O_DIRECTORY"):
        return
    try:
        fd = os.open(directory, os.O_RDONLY | os.O_DIRECTORY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_text(
    directory: Path, path: Path, payload: str, *, suffix: str = ".json"
) -> None:
    """tmp-write + fsync + rename + dir fsync; no stray tmp file on failure.

    The directory fsync after :func:`os.replace` is what makes the *rename*
    durable: without it a completed record can vanish on power failure even
    though its bytes were fsynced.
    """
    descriptor, tmp_name = tempfile.mkstemp(
        prefix=_TMP_PREFIX, suffix=suffix, dir=directory
    )
    try:
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    fsync_dir(directory)
