"""RBM-IM: the paper's core contribution.

A skew-insensitive Restricted Boltzmann Machine (:class:`SkewInsensitiveRBM`)
with a class layer and class-balanced loss is trained online on mini-batches.
Per-class reconstruction errors, their ADWIN-windowed trends, and a
first-difference Granger causality test combine into the :class:`RBMIM`
drift detector capable of detecting global *and* local (per-class) drifts in
multi-class imbalanced data streams.
"""

from repro.core.detector import RBMIM, RBMIMConfig
from repro.core.granger import GrangerResult, first_differences, granger_causality
from repro.core.loss import (
    ClassBalancedWeighter,
    class_balanced_weights,
    effective_number,
)
from repro.core.rbm import RBMConfig, SkewInsensitiveRBM
from repro.core.reconstruction import (
    instance_reconstruction_errors,
    per_class_reconstruction_error,
)
from repro.core.scaling import OnlineMinMaxScaler
from repro.core.trend import TrendTracker

__all__ = [
    "RBMIM",
    "RBMIMConfig",
    "RBMConfig",
    "SkewInsensitiveRBM",
    "GrangerResult",
    "granger_causality",
    "first_differences",
    "ClassBalancedWeighter",
    "class_balanced_weights",
    "effective_number",
    "instance_reconstruction_errors",
    "per_class_reconstruction_error",
    "OnlineMinMaxScaler",
    "TrendTracker",
]
