"""RBM-IM: the trainable drift detector for multi-class imbalanced streams.

This module ties together the pieces of Section V of the paper:

1. a :class:`~repro.core.rbm.SkewInsensitiveRBM` continuously trained on
   mini-batches with the class-balanced loss (Eqs. 13-21);
2. the per-class reconstruction error of each arriving mini-batch
   (Eqs. 22-27);
3. a per-class :class:`~repro.core.trend.TrendTracker` estimating the trend of
   the reconstruction error over an ADWIN-sized sliding window (Eqs. 28-37);
4. a first-difference Granger causality test between the trends of consecutive
   windows (Section V-B): when the previous trend no longer forecasts the
   current one *and* the reconstruction error of the class has escalated, a
   drift is signalled for that class.

The detector is fully trainable and self-adaptive: it re-trains itself on
every mini-batch, so it follows changing imbalance ratios and class-role
switches, and it reports drifts per class, enabling local drift detection.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.granger import granger_causality, granger_causality_lag1_diff
from repro.core.rbm import RBMConfig, SkewInsensitiveRBM
from repro.core.reconstruction import reconstruction_errors_from_hidden
from repro.core.scaling import OnlineMinMaxScaler
from repro.core.snapshot import register_dataclass
from repro.core.trend import TrendTracker
from repro.detectors.base import InstanceDetector

__all__ = ["RBMIMConfig", "RBMIM"]


@register_dataclass
@dataclass(frozen=True)
class RBMIMConfig:
    """Hyper-parameters of the RBM-IM drift detector (Table II, last block).

    Attributes
    ----------
    batch_size:
        Mini-batch size ``M`` (25-100 in the paper's tuning grid).
    hidden_ratio:
        Hidden-layer width as a fraction of the number of features
        (0.25-1.0 in the grid).
    learning_rate:
        RBM learning rate ``eta``.
    cd_steps:
        Gibbs sampling steps ``k`` of CD-k.
    train_epochs:
        Number of CD passes over each arriving mini-batch.  More passes make
        the detector follow the current concept faster (important for
        minority classes that contribute few instances per batch) at a small
        computational cost.
    balance_beta:
        ``beta`` of the class-balanced loss; set to 0 to disable the
        skew-insensitive weighting (ablation).
    warm_start_epochs:
        Number of passes over the first mini-batch used to initialise the RBM
        before monitoring starts.
    min_class_history:
        Minimum number of per-class reconstruction-error observations before
        the drift test activates for that class.
    min_class_samples:
        Minimum number of instances of a class pooled into one
        reconstruction-error observation.  Majority classes reach this within
        a single mini-batch; minority-class instances are accumulated across
        batches so their error estimates are not dominated by single-instance
        noise (essential under high imbalance ratios).
    granger_segment:
        Length of the "previous" and "current" trend sub-series compared by
        the Granger test.
    granger_lags:
        Lag order of the Granger test.
    granger_alpha:
        Significance level of the Granger F-test.
    sensitivity:
        Number of standard deviations the current per-class reconstruction
        error must exceed its window mean by to corroborate a drift.
    confirmation_batches:
        Number of consecutive suspicious mini-batches required before a drift
        is signalled for a class (1 = fire immediately; 2, the default,
        suppresses isolated noise spikes at the cost of one extra batch of
        detection delay).
    use_granger:
        Disable to fall back to the pure z-score rule (ablation).
    require_error_increase:
        Require the reconstruction error to escalate in addition to the
        Granger criterion (guards against false alarms on stationary noise).
    adwin_delta:
        Confidence of the ADWIN instances that size the trend windows.
    seed:
        RNG seed for the RBM.
    """

    batch_size: int = 50
    hidden_ratio: float = 0.5
    learning_rate: float = 0.05
    cd_steps: int = 1
    train_epochs: int = 1
    balance_beta: float = 0.999
    balance_decay: float = 0.999
    warm_start_epochs: int = 10
    min_class_history: int = 6
    min_class_samples: int = 5
    granger_segment: int = 6
    granger_lags: int = 1
    granger_alpha: float = 0.05
    sensitivity: float = 3.0
    warning_sensitivity: float = 2.0
    confirmation_batches: int = 2
    use_granger: bool = True
    require_error_increase: bool = True
    adwin_delta: float = 0.002
    max_trend_window: int = 200
    scaler_forget: float = 0.0
    momentum: float = 0.5
    weight_decay: float = 1e-4
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.batch_size < 2:
            raise ValueError("batch_size must be >= 2")
        if not 0.0 < self.hidden_ratio <= 4.0:
            raise ValueError("hidden_ratio must be in (0, 4]")
        if self.granger_segment < 3:
            raise ValueError("granger_segment must be >= 3")
        if self.min_class_history < 2:
            raise ValueError("min_class_history must be >= 2")
        if self.sensitivity <= 0.0 or self.warning_sensitivity <= 0.0:
            raise ValueError("sensitivities must be positive")
        if self.confirmation_batches < 1:
            raise ValueError("confirmation_batches must be >= 1")
        if self.min_class_samples < 1:
            raise ValueError("min_class_samples must be >= 1")
        if self.train_epochs < 1:
            raise ValueError("train_epochs must be >= 1")


@register_dataclass
@dataclass
class _ClassMonitor:
    """Per-class bookkeeping: error history, trend tracker, pending alarms.

    The baseline error history keeps running first and second moments next to
    the bounded deque, so the z-score test reads two scalars instead of
    re-reducing the whole window on every mini-batch; the per-class sample
    pool is likewise reduced to (sum, count) — only its mean is ever used.
    """

    tracker: TrendTracker
    errors: deque = field(default_factory=lambda: deque(maxlen=400))
    error_sum: float = 0.0
    error_sumsq: float = 0.0
    pending: int = 0
    sample_sum: float = 0.0
    sample_count: int = 0

    def append_error(self, error: float) -> None:
        errors = self.errors
        if len(errors) == errors.maxlen:
            evicted = errors[0]
            self.error_sum -= evicted
            self.error_sumsq -= evicted * evicted
        errors.append(error)
        self.error_sum += error
        self.error_sumsq += error * error

    def reset(self) -> None:
        self.tracker.reset()
        self.errors.clear()
        self.error_sum = 0.0
        self.error_sumsq = 0.0
        self.pending = 0
        self.sample_sum = 0.0
        self.sample_count = 0


class RBMIM(InstanceDetector):
    """Restricted Boltzmann Machine drift detector for imbalanced streams.

    Parameters
    ----------
    n_features, n_classes:
        Shape of the monitored stream.
    config:
        Detector hyper-parameters; defaults follow the paper's tuned ranges.

    Notes
    -----
    The detector consumes raw labelled instances through
    :meth:`add_instance` (or the uniform :meth:`step` API).  Instances are
    buffered into mini-batches of ``config.batch_size``; when a batch is
    complete the detector (i) measures per-class reconstruction errors,
    (ii) updates per-class trends and runs the drift tests, and (iii) trains
    the RBM on the batch so it keeps tracking the current concept.
    """

    def __init__(
        self,
        n_features: int,
        n_classes: int,
        config: RBMIMConfig | None = None,
    ) -> None:
        super().__init__(n_features, n_classes)
        self._cfg = config or RBMIMConfig()
        n_hidden = max(2, int(round(self._cfg.hidden_ratio * n_features)))
        rbm_config = RBMConfig(
            n_visible=n_features,
            n_hidden=n_hidden,
            n_classes=n_classes,
            learning_rate=self._cfg.learning_rate,
            cd_steps=self._cfg.cd_steps,
            momentum=self._cfg.momentum,
            weight_decay=self._cfg.weight_decay,
            balance_beta=self._cfg.balance_beta,
            balance_decay=self._cfg.balance_decay,
            seed=self._cfg.seed,
        )
        self._rbm_config = rbm_config
        self._rbm = SkewInsensitiveRBM(rbm_config)
        self._scaler = OnlineMinMaxScaler(n_features, forget=self._cfg.scaler_forget)
        self._monitors = [
            _ClassMonitor(
                tracker=TrendTracker(
                    adwin_delta=self._cfg.adwin_delta,
                    max_window=self._cfg.max_trend_window,
                )
            )
            for _ in range(n_classes)
        ]
        # Mini-batch accumulator: a preallocated block the instance and batch
        # paths both write rows into (no per-instance list bookkeeping).
        self._buffer_X = np.empty((self._cfg.batch_size, n_features))
        self._buffer_y = np.empty(self._cfg.batch_size, dtype=np.int64)
        self._buffer_n = 0
        self._row_arange = np.arange(self._cfg.batch_size)
        # Per-batch scratch: packed [v | z] rows, hidden activations and the
        # reconstruction output are reused across mini-batches (contents are
        # fully overwritten each `_process_batch`).
        self._vz0_buf = np.zeros((self._cfg.batch_size, n_features + n_classes))
        self._h_buf = np.empty((self._cfg.batch_size, n_hidden))
        self._recon_buf = np.empty((self._cfg.batch_size, n_features + n_classes))
        self._warm_started = False
        self._batches_processed = 0
        self._last_per_class_errors = np.full(n_classes, np.nan)

    # Scratch (shape-derived, fully overwritten each batch) is rebuilt on
    # restore; the mini-batch accumulator is captured as its filled prefix so
    # uninitialised tail bytes never leak into (or differ between) snapshots.
    _SNAPSHOT_EXCLUDE = frozenset({
        "_row_arange", "_vz0_buf", "_h_buf", "_recon_buf",
        "_buffer_X", "_buffer_y",
    })

    def _snapshot_state(self) -> dict:
        state = super()._snapshot_state()
        state["buffer_rows_X"] = self._buffer_X[: self._buffer_n].copy()
        state["buffer_rows_y"] = self._buffer_y[: self._buffer_n].copy()
        return state

    def _restore_state(self, state: dict) -> None:
        rows_X = state.pop("buffer_rows_X")
        rows_y = state.pop("buffer_rows_y")
        super()._restore_state(state)
        batch_size = self._cfg.batch_size
        self._buffer_X = np.empty((batch_size, self._n_features))
        self._buffer_y = np.empty(batch_size, dtype=np.int64)
        self._buffer_X[: rows_X.shape[0]] = rows_X
        self._buffer_y[: rows_y.shape[0]] = rows_y

    def _after_restore(self) -> None:
        batch_size = self._cfg.batch_size
        n_vz = self._n_features + self._n_classes
        self._row_arange = np.arange(batch_size)
        self._vz0_buf = np.zeros((batch_size, n_vz))
        self._h_buf = np.empty((batch_size, self._rbm_config.n_hidden))
        self._recon_buf = np.empty((batch_size, n_vz))

    # ---------------------------------------------------------------- state
    @property
    def config(self) -> RBMIMConfig:
        return self._cfg

    @property
    def rbm(self) -> SkewInsensitiveRBM:
        """The underlying skew-insensitive RBM (for inspection/ablation)."""
        return self._rbm

    @property
    def batches_processed(self) -> int:
        return self._batches_processed

    @property
    def last_per_class_errors(self) -> np.ndarray:
        """Per-class reconstruction errors of the most recent mini-batch."""
        return self._last_per_class_errors.copy()

    def class_trend(self, label: int) -> list[float]:
        """Trend history of a class's reconstruction error."""
        return self._monitors[label].tracker.trend_history

    def reset(self) -> None:
        """Reset to a freshly constructed detector.

        Rebuilds the RBM (same seed) and the scaler and clears the warm-start
        flag, so a reset detector replays a stream exactly like a new
        instance — stale weights or feature ranges cannot leak into the next
        run.
        """
        super().reset()
        for monitor in self._monitors:
            monitor.reset()
        self._buffer_n = 0
        self._rbm = SkewInsensitiveRBM(self._rbm_config)
        self._scaler = OnlineMinMaxScaler(
            self._n_features, forget=self._cfg.scaler_forget
        )
        self._warm_started = False
        self._batches_processed = 0
        self._last_per_class_errors = np.full(self._n_classes, np.nan)

    # ------------------------------------------------------------ training
    def warm_start(self, X: Sequence[np.ndarray], y: Sequence[int]) -> None:
        """Initialise the RBM on the first batch of the stream.

        The paper trains the detector on the first instance batch before
        monitoring begins; several epochs over that batch give the RBM a
        usable representation of the initial concept.
        """
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        y = np.asarray(y, dtype=np.int64)
        if X.shape[0] == 0:
            raise ValueError("warm_start requires at least one instance")
        scaled = self._scaler.fit_transform(X)
        for _ in range(self._cfg.warm_start_epochs):
            self._rbm.partial_fit(scaled, y)
        self._warm_started = True

    # ------------------------------------------------------------- updates
    def add_instance(self, x: np.ndarray, y: int) -> None:
        """Buffer one labelled instance; run detection when the batch is full."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape[0] != self._n_features:
            raise ValueError(
                f"expected {self._n_features} features, got {x.shape[0]}"
            )
        if not 0 <= int(y) < self._n_classes:
            raise ValueError("label out of range")
        n = self._buffer_n
        self._buffer_X[n] = x
        self._buffer_y[n] = int(y)
        self._buffer_n = n + 1
        if self._buffer_n >= self._cfg.batch_size:
            self._process_batch()

    def step_batch(
        self,
        features: np.ndarray,
        y_true: np.ndarray,
        y_pred: np.ndarray,
    ) -> np.ndarray:
        """Native batch stepping: identical detections, no per-instance loop.

        Instances are appended to the internal mini-batch buffer in bulk and
        the detection/training pipeline runs whenever the buffer reaches
        ``config.batch_size`` — exactly the boundaries the per-instance
        :meth:`step` path would hit, so detections (positions and blamed
        classes) are bit-identical to instance-mode stepping.  ``y_pred`` is
        accepted for interface uniformity and ignored, as in :meth:`step`.
        """
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        y_true = np.asarray(y_true, dtype=np.int64)
        n = y_true.shape[0]
        if features.shape != (n, self._n_features):
            raise ValueError(
                f"expected features of shape ({n}, {self._n_features}), "
                f"got {features.shape}"
            )
        if n and (y_true.min() < 0 or y_true.max() >= self._n_classes):
            raise ValueError("label out of range")
        flags = np.zeros(n, dtype=bool)
        batch_size = self._cfg.batch_size
        consumed = 0
        while consumed < n:
            filled = self._buffer_n
            take = min(n - consumed, batch_size - filled)
            self._buffer_X[filled : filled + take] = features[
                consumed : consumed + take
            ]
            self._buffer_y[filled : filled + take] = y_true[
                consumed : consumed + take
            ]
            self._buffer_n = filled + take
            self._n_observations += take
            consumed += take
            self._in_drift = False
            self._in_warning = False
            self._drifted_classes = None
            if self._buffer_n >= batch_size:
                self._process_batch()
                if self._in_drift:
                    flags[consumed - 1] = True
                    self._detections.append(self._n_observations)
                    self._detection_classes.append(
                        set(self._drifted_classes) if self._drifted_classes else None
                    )
        return flags

    def flush(self) -> None:
        """Force processing of a partially filled buffer (end of stream)."""
        if self._buffer_n >= 2:
            self._process_batch()

    # ------------------------------------------------------------ internals
    def _process_batch(self) -> None:
        n = self._buffer_n
        self._buffer_n = 0
        X = self._buffer_X[:n]
        y = self._buffer_y[:n]

        if not self._warm_started:
            self.warm_start(X, y)
            self._batches_processed += 1
            return

        scaled = self._scaler.partial_fit_transform(X)

        # One fused forward pass on packed [v | z] rows: the hidden
        # probabilities feed both the Eq. 26 reconstruction errors and the
        # positive phase of the first CD epoch below.
        n_features = self._n_features
        vz0 = self._vz0_buf[:n]
        vz0[:, :n_features] = scaled
        z0 = vz0[:, n_features:]
        z0[:] = 0.0
        vz0[self._row_arange[:n], n_features + y] = 1.0
        h = self._rbm.hidden_probabilities_packed(vz0, out=self._h_buf[:n])
        errors = reconstruction_errors_from_hidden(
            self._rbm, scaled, z0, h, recon_out=self._recon_buf[:n]
        )

        # Pool instance errors per class; minority classes accumulate across
        # mini-batches until `min_class_samples` instances are available so
        # their error estimate is not single-instance noise (Eq. 27 averaged
        # over an adaptive per-class pool).  Two bincounts replace the
        # per-class mask scans.
        counts = np.bincount(y, minlength=self._n_classes).tolist()
        error_sums = np.bincount(
            y, weights=errors, minlength=self._n_classes
        ).tolist()
        per_class_errors = np.full(self._n_classes, np.nan)
        min_samples = self._cfg.min_class_samples
        min_history = self._cfg.min_class_history
        drifted: set[int] = set()
        warning = False
        for label in range(self._n_classes):
            monitor = self._monitors[label]
            if counts[label]:
                monitor.sample_sum += error_sums[label]
                monitor.sample_count += counts[label]
            if monitor.sample_count < min_samples:
                continue
            error = monitor.sample_sum / monitor.sample_count
            monitor.sample_sum = 0.0
            monitor.sample_count = 0
            per_class_errors[label] = error
            monitor.tracker.update(error)
            if len(monitor.errors) < min_history:
                monitor.append_error(error)
                continue
            suspicious, is_warning = self._test_class(monitor, error)
            if suspicious:
                # Suspicious batches are not absorbed into the baseline: the
                # class either confirms the drift on the next batches or the
                # alarm is retracted and normal tracking resumes.
                monitor.pending += 1
                if monitor.pending >= self._cfg.confirmation_batches:
                    drifted.add(label)
                else:
                    warning = True
            else:
                monitor.pending = 0
                monitor.append_error(error)
                warning = warning or is_warning

        self._last_per_class_errors = per_class_errors
        if drifted:
            self._in_drift = True
            self._drifted_classes = drifted
            for label in drifted:
                self._monitors[label].reset()
        elif warning:
            self._in_warning = True

        # Continual adaptation: the RBM learns the newest mini-batch, except
        # for instances of classes that are currently under suspicion (pending
        # confirmation) — training on them would erase the very signal the
        # confirmation step needs.  Once a drift is confirmed the monitors are
        # reset and the class is learned again from the next batch onward.
        # The common no-suspicion case reuses the z0/h pair from the error
        # pass for the first epoch's positive phase; later epochs recompute h
        # because the parameters have moved.
        pending = [
            label
            for label, monitor in enumerate(self._monitors)
            if monitor.pending > 0 and label not in drifted
        ]
        cfg = self._cfg
        if not pending:
            self._rbm.partial_fit(scaled, y, vz0=vz0, h0=h, want_error=False)
            for _ in range(cfg.train_epochs - 1):
                self._rbm.partial_fit(scaled, y, vz0=vz0, want_error=False)
        else:
            train_mask = ~np.isin(y, pending)
            if train_mask.any():
                vz0_t = vz0[train_mask]
                scaled_t = vz0_t[:, :n_features]
                y_t = y[train_mask]
                self._rbm.partial_fit(
                    scaled_t, y_t, vz0=vz0_t, h0=h[train_mask], want_error=False
                )
                for _ in range(cfg.train_epochs - 1):
                    self._rbm.partial_fit(scaled_t, y_t, vz0=vz0_t, want_error=False)
        self._batches_processed += 1

    def _test_class(self, monitor: _ClassMonitor, error: float) -> tuple[bool, bool]:
        """Drift / warning decision for one class given its error history.

        The baseline mean/std come from the monitor's running first and
        second moments (two scalar reads instead of reducing the whole
        window every mini-batch).
        """
        cfg = self._cfg
        k = len(monitor.errors)
        mean = monitor.error_sum / k
        variance = monitor.error_sumsq / k - mean * mean
        std = float(np.sqrt(variance)) if variance > 0.0 else 0.0
        std = max(std, 1e-3 * max(abs(mean), 1e-6), 1e-9)
        z_score = (error - mean) / std
        escalated = z_score > cfg.sensitivity
        warning = z_score > cfg.warning_sensitivity

        if not cfg.use_granger:
            return escalated, warning and not escalated

        if cfg.require_error_increase and not escalated:
            # Drift needs causality breakdown AND escalation, and the warning
            # outcome is the same on the Granger path and its fallback — the
            # test cannot change the decision, so it is skipped outright.
            # This removes the per-class Granger fit from almost every batch.
            return False, warning

        segment = cfg.granger_segment
        if monitor.tracker.n_trends < 2 * segment:
            # Not enough trend history for the causality test: fall back to
            # the escalation rule alone so early drifts are not missed.
            return escalated, warning and not escalated

        tail = monitor.tracker.trend_tail(2 * segment)
        if cfg.granger_lags == 1:
            causality = granger_causality_lag1_diff(
                tail[:segment], tail[segment:], alpha=cfg.granger_alpha
            )
        else:
            result = granger_causality(
                np.asarray(tail[:segment]),
                np.asarray(tail[segment:]),
                lags=cfg.granger_lags,
                alpha=cfg.granger_alpha,
                use_first_differences=True,
            )
            causality = result.causality
        causality_broken = not causality
        if cfg.require_error_increase:
            drift = causality_broken and escalated
        else:
            drift = causality_broken or escalated
        return drift, warning and not drift
