"""Sliding-window trend of the reconstruction error (Eqs. 28-37).

The evolution of each class's reconstruction error over arriving mini-batches
is summarised by the slope of a simple linear regression computed over a
sliding window.  The paper maintains the regression terms incrementally
(Eqs. 29-36) and sizes the window adaptively with ADWIN instead of a manual
constant (Eq. 37 handles the ``t > W`` case).  :class:`TrendTracker`
implements exactly this bookkeeping for a single monitored series; RBM-IM
instantiates one tracker per class.

The monitored values live in a flat ``float64`` buffer (compacted in blocks)
so every slope is computed on a contiguous slice — no per-update
deque-to-array conversion on the detector's hot path.
"""

from __future__ import annotations

import numpy as np

from repro.core.snapshot import Snapshotable
from repro.detectors.adwin import ADWIN

__all__ = ["TrendTracker"]


class TrendTracker(Snapshotable):
    """Incremental sliding-window linear-regression slope with adaptive width.

    Parameters
    ----------
    adwin_delta:
        Confidence parameter of the internal ADWIN instance that adapts the
        window length to the monitored signal.
    max_window:
        Hard cap on the window length (keeps memory bounded even when ADWIN
        grows its window on long stable streams).
    min_window:
        Smallest window used for slope estimation.
    """

    def __init__(
        self,
        adwin_delta: float = 0.002,
        max_window: int = 200,
        min_window: int = 4,
    ) -> None:
        if min_window < 2:
            raise ValueError("min_window must be >= 2")
        if max_window < min_window:
            raise ValueError("max_window must be >= min_window")
        self._adwin = ADWIN(delta=adwin_delta)
        self._max_window = max_window
        self._min_window = min_window
        # Values only: update times are consecutive integers by construction,
        # so the regression is computed on 0..n-1 offsets (the slope is
        # shift-invariant, and small offsets avoid the cancellation that raw
        # timestamps cause in n*sum(t^2) - sum(t)^2).  The buffer holds twice
        # the window so appends are O(1) between rare block compactions.
        self._values = np.empty(2 * max_window, dtype=np.float64)
        self._cursor = 0
        self._arange = np.arange(max_window, dtype=np.float64)
        # Row 0 of ones and row 1 of 0..W-1: one gemv against the window
        # yields (sum_r, sum_tr) together instead of two separate reductions.
        self._moment_rows = np.vstack(
            (np.ones(max_window), np.arange(max_window, dtype=np.float64))
        )
        self._time = 0
        self._trend_history: list[float] = []

    # --------------------------------------------------------------- state
    @property
    def window_size(self) -> int:
        """Current adaptive window size ``W`` (bounded by ``max_window``)."""
        width = self._adwin.width
        return int(min(max(width, self._min_window), self._max_window))

    @property
    def n_updates(self) -> int:
        return self._time

    @property
    def trend_history(self) -> list[float]:
        """Trend (slope) values produced so far, most recent last."""
        return self._trend_history[-self._max_window :]

    def trend_tail(self, k: int) -> list[float]:
        """The most recent ``min(k, available)`` trend values (cheap slice)."""
        return self._trend_history[-k:]

    @property
    def n_trends(self) -> int:
        """Number of retained trend values (bounded by ``max_window``)."""
        return min(len(self._trend_history), self._max_window)

    @property
    def value_history(self) -> list[float]:
        """Monitored values currently inside the (max) window."""
        start = max(0, self._cursor - self._max_window)
        return self._values[start : self._cursor].tolist()

    def reset(self) -> None:
        self._adwin.reset()
        self._cursor = 0
        self._trend_history.clear()
        self._time = 0

    # -------------------------------------------------------------- update
    def update(self, value: float) -> float:
        """Consume one monitored value and return the current trend slope.

        Implements Eq. 28 with the incremental sums of Eqs. 29-36 evaluated
        over the adaptive window: the slope of the least-squares line fitted
        to ``(t, value)`` pairs inside the window.  Returns 0.0 until at least
        ``min_window`` values have been observed.
        """
        self._time += 1
        self._adwin.add_element(value)
        cursor = self._cursor
        if cursor == self._values.shape[0]:
            # Block compaction: keep the last max_window values at the front.
            keep = self._max_window
            self._values[:keep] = self._values[cursor - keep : cursor]
            cursor = keep
        self._values[cursor] = value
        cursor += 1
        self._cursor = cursor

        # Inlined self.window_size / self._slope: this runs once per class
        # per mini-batch, where attribute/property dispatch is measurable.
        width = self._adwin._width
        if width < self._min_window:
            width = self._min_window
        elif width > self._max_window:
            width = self._max_window
        n = width if width < cursor else cursor
        if n < 2:
            slope = 0.0
        else:
            values = self._values[cursor - n : cursor]
            sum_t = n * (n - 1) // 2
            sum_t2 = (n - 1) * n * (2 * n - 1) // 6
            moments = self._moment_rows[:, :n] @ values
            sum_r = float(moments[0])
            sum_tr = float(moments[1])
            denominator = n * sum_t2 - sum_t * sum_t
            slope = (n * sum_tr - sum_t * sum_r) / denominator
        history = self._trend_history
        history.append(slope)
        if len(history) >= 4 * self._max_window:
            del history[: -self._max_window]
        return slope

    def _slope(self, values: np.ndarray) -> float:
        """Least-squares slope ``Qr`` of Eq. 28 over the retained points.

        The regression abscissa is the 0-based offset inside the window
        (consecutive update times shifted to the origin), whose moment sums
        have exact closed forms.
        """
        n = values.shape[0]
        if n < 2:
            return 0.0
        sum_t = n * (n - 1) // 2
        sum_t2 = (n - 1) * n * (2 * n - 1) // 6
        sum_r = float(values.sum())
        sum_tr = float(self._arange[:n] @ values)
        denominator = n * sum_t2 - sum_t * sum_t
        return (n * sum_tr - sum_t * sum_r) / denominator
