"""Sliding-window trend of the reconstruction error (Eqs. 28-37).

The evolution of each class's reconstruction error over arriving mini-batches
is summarised by the slope of a simple linear regression computed over a
sliding window.  The paper maintains the regression terms incrementally
(Eqs. 29-36) and sizes the window adaptively with ADWIN instead of a manual
constant (Eq. 37 handles the ``t > W`` case).  :class:`TrendTracker`
implements exactly this bookkeeping for a single monitored series; RBM-IM
instantiates one tracker per class.
"""

from __future__ import annotations

from collections import deque

from repro.detectors.adwin import ADWIN

__all__ = ["TrendTracker"]


class TrendTracker:
    """Incremental sliding-window linear-regression slope with adaptive width.

    Parameters
    ----------
    adwin_delta:
        Confidence parameter of the internal ADWIN instance that adapts the
        window length to the monitored signal.
    max_window:
        Hard cap on the window length (keeps memory bounded even when ADWIN
        grows its window on long stable streams).
    min_window:
        Smallest window used for slope estimation.
    """

    def __init__(
        self,
        adwin_delta: float = 0.002,
        max_window: int = 200,
        min_window: int = 4,
    ) -> None:
        if min_window < 2:
            raise ValueError("min_window must be >= 2")
        if max_window < min_window:
            raise ValueError("max_window must be >= min_window")
        self._adwin = ADWIN(delta=adwin_delta)
        self._max_window = max_window
        self._min_window = min_window
        self._history: deque[tuple[int, float]] = deque(maxlen=max_window)
        self._time = 0
        self._trend_history: deque[float] = deque(maxlen=max_window)

    # --------------------------------------------------------------- state
    @property
    def window_size(self) -> int:
        """Current adaptive window size ``W`` (bounded by ``max_window``)."""
        width = self._adwin.width
        return int(min(max(width, self._min_window), self._max_window))

    @property
    def n_updates(self) -> int:
        return self._time

    @property
    def trend_history(self) -> list[float]:
        """Trend (slope) values produced so far, most recent last."""
        return list(self._trend_history)

    @property
    def value_history(self) -> list[float]:
        """Monitored values currently inside the (max) window."""
        return [value for _, value in self._history]

    def reset(self) -> None:
        self._adwin.reset()
        self._history.clear()
        self._trend_history.clear()
        self._time = 0

    # -------------------------------------------------------------- update
    def update(self, value: float) -> float:
        """Consume one monitored value and return the current trend slope.

        Implements Eq. 28 with the incremental sums of Eqs. 29-36 evaluated
        over the adaptive window: the slope of the least-squares line fitted
        to ``(t, value)`` pairs inside the window.  Returns 0.0 until at least
        ``min_window`` values have been observed.
        """
        self._time += 1
        self._adwin.add_element(float(value))
        self._history.append((self._time, float(value)))

        window = self.window_size
        recent = list(self._history)[-window:]
        slope = self._slope(recent)
        self._trend_history.append(slope)
        return slope

    @staticmethod
    def _slope(points: list[tuple[int, float]]) -> float:
        """Least-squares slope ``Qr`` of Eq. 28 over the retained points."""
        n = len(points)
        if n < 2:
            return 0.0
        sum_t = sum(t for t, _ in points)
        sum_r = sum(r for _, r in points)
        sum_tr = sum(t * r for t, r in points)
        sum_t2 = sum(t * t for t, _ in points)
        denominator = n * sum_t2 - sum_t * sum_t
        if abs(denominator) < 1e-12:
            return 0.0
        return (n * sum_tr - sum_t * sum_r) / denominator
