"""Shared windowed-statistics core for the vectorized detector kernels.

Every drift detector in the zoo reduces to a handful of primitives over the
monitored stream: running sums and means, reference ("best so far") statistics
tracked with weak prefix minima/maxima, fixed-size sliding windows with
rolling sums, concentration bounds (Hoeffding / McDiarmid), consecutive-state
run lengths, and — for ADWIN — an exponential histogram of buckets.  This
module provides those primitives once, in a form usable both by the scalar
``step`` paths and by the NumPy-native ``step_batch`` kernels.

Bit-exactness contract
----------------------
The batch kernels must return *exactly* the detection positions the
per-instance loop would (chunk-exact semantics), so every helper here is
written to reproduce the scalar recurrences bit-for-bit under the conditions
the detectors actually use them in:

* ``np.add.accumulate`` / ``np.minimum.accumulate`` apply their operation as
  a strict left-to-right fold, matching a scalar ``acc += x`` loop;
* the detectors monitor 0/1 error indicators (and integer error distances),
  so running sums and window sums are exact integers in float64 and every
  re-association of the additions is value-preserving;
* derived quantities (means, bounds, test statistics) are computed with the
  same expression shapes as the scalar code so each operation rounds
  identically.

Helpers that rely on integer-valued contents (``RingWindow`` rolling sums,
the exclusive totals) document it explicitly.
"""

from __future__ import annotations

import math
from typing import Iterator

import numpy as np

from repro.core.snapshot import Snapshotable

__all__ = [
    "hoeffding_bound",
    "mcdiarmid_bound",
    "running_totals",
    "exclusive_totals",
    "tracked_weak_min",
    "tracked_weak_max",
    "strict_prefix_max_exclusive",
    "consecutive_true_runs",
    "gather_tracked",
    "RingWindow",
    "StackedRingWindow",
    "ExponentialBuckets",
]


# --------------------------------------------------------------------- bounds
def hoeffding_bound(n, confidence: float):
    """Hoeffding epsilon ``sqrt(ln(1/confidence) / (2 n))``.

    ``n`` may be a scalar or an array; the expression shape matches the
    scalar helpers used by DDM-family and HDDM detectors so scalar and batch
    paths round identically.  Returns ``inf`` where ``n <= 0`` (no samples in
    the reference window yet — the bound is vacuous), which fleet-mode
    zero-sample lanes hit routinely; without the guard the division emits a
    RuntimeWarning and ``n < 0`` even yields ``nan``.
    """
    n = np.asarray(n, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        out = np.sqrt(np.log(1.0 / confidence) / (2.0 * n))
    return np.where(n <= 0.0, np.inf, out)


def mcdiarmid_bound(ind_sum, confidence: float):
    """McDiarmid epsilon ``sqrt(S ln(1/confidence) / 2)`` over weight sums.

    Returns ``inf`` where ``ind_sum <= 0`` (no mass yet), mirroring the
    scalar guard in HDDM-W.
    """
    ind_sum = np.asarray(ind_sum, dtype=np.float64)
    with np.errstate(invalid="ignore"):
        out = np.sqrt(ind_sum * math.log(1.0 / confidence) / 2.0)
    return np.where(ind_sum <= 0.0, np.inf, out)


# ----------------------------------------------------------- running statistics
def running_totals(values: np.ndarray, prior: float = 0.0) -> np.ndarray:
    """Totals *after* each element: ``prior + v0, (prior + v0) + v1, ...``.

    The prior state seeds the accumulation, so the additions happen in
    exactly the order a scalar ``acc += v`` loop performs them
    (``np.add.accumulate`` is a strict left-to-right fold) and the partial
    sums are bit-identical for arbitrary real-valued inputs.
    """
    values = np.asarray(values, dtype=np.float64)
    seeded = np.empty(values.shape[0] + 1, dtype=np.float64)
    seeded[0] = prior
    seeded[1:] = values
    return np.add.accumulate(seeded)[1:]


def exclusive_totals(values: np.ndarray, prior: float = 0.0) -> np.ndarray:
    """Totals *before* each element: ``prior, prior + v0, ...``.

    Bit-identical to the scalar fold for arbitrary inputs (see
    :func:`running_totals`).
    """
    values = np.asarray(values, dtype=np.float64)
    seeded = np.empty(values.shape[0], dtype=np.float64)
    if seeded.shape[0]:
        seeded[0] = prior
        seeded[1:] = values[:-1]
        np.add.accumulate(seeded, out=seeded)
    return seeded


def tracked_weak_min(scores: np.ndarray, prior: float) -> np.ndarray:
    """Index of the reference element a weak prefix-min tracker holds.

    Models the classic "best statistic so far" update ``if s_t <= s_min:
    remember element t`` (non-strict, so ties re-update and the *latest*
    minimising element wins).  Returns, for every position ``t``, the index of
    the element the tracker references after processing ``t``; ``-1`` means
    the prior reference (``prior``) is still in place.
    """
    scores = np.asarray(scores, dtype=np.float64)
    n = scores.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    prefix_min = np.minimum.accumulate(scores)
    min_excl = np.empty(n, dtype=np.float64)
    min_excl[0] = prior
    np.minimum(prefix_min[:-1], prior, out=min_excl[1:])
    updates = scores <= min_excl
    indices = np.where(updates, np.arange(n, dtype=np.int64), -1)
    return np.maximum.accumulate(indices)


def tracked_weak_max(scores: np.ndarray, prior: float) -> np.ndarray:
    """Mirror of :func:`tracked_weak_min` for ``if s_t >= s_max`` trackers."""
    return tracked_weak_min(-np.asarray(scores, dtype=np.float64), -prior)


def strict_prefix_max_exclusive(scores: np.ndarray, prior: float) -> np.ndarray:
    """Running maximum *before* each element, seeded with ``prior``.

    Supports the strict "``if s_t > s_max`` update, else test against
    ``s_max``" pattern (EDDM): the value tested at ``t`` is the maximum over
    the prior state and all elements before ``t``.
    """
    scores = np.asarray(scores, dtype=np.float64)
    n = scores.shape[0]
    out = np.empty(n, dtype=np.float64)
    if n:
        out[0] = prior
        np.maximum.accumulate(scores[:-1], out=out[1:])
        np.maximum(out[1:], prior, out=out[1:])
    return out


def consecutive_true_runs(mask: np.ndarray, prior_run: int = 0) -> np.ndarray:
    """Length of the True-run ending at each position, carrying a prior run.

    ``mask=[T,T,F,T]`` with ``prior_run=2`` yields ``[3,4,0,1]`` — the value a
    scalar ``count = count + 1 if flag else 0`` counter would hold after each
    element.  Used for RDDM's consecutive-warning limit.
    """
    mask = np.asarray(mask, dtype=bool)
    n = mask.shape[0]
    indices = np.arange(n, dtype=np.int64)
    last_false = np.maximum.accumulate(np.where(~mask, indices, -1))
    runs = np.where(
        last_false >= 0, indices - last_false, indices + 1 + int(prior_run)
    )
    return np.where(mask, runs, 0)


def gather_tracked(
    tracked: np.ndarray, values: np.ndarray, prior: float
) -> np.ndarray:
    """Gather ``values[tracked]`` with ``tracked == -1`` mapping to ``prior``."""
    safe = np.maximum(tracked, 0)
    out = np.asarray(values, dtype=np.float64)[safe]
    return np.where(tracked >= 0, out, prior)


# ------------------------------------------------------------------ RingWindow
class RingWindow(Snapshotable):
    """Fixed-capacity sliding window with an O(1) maintained sum.

    Backs the windowed detectors (FHDDM's correctness window, WSTD's
    recent/old samples).  The maintained sum is exact for integer-valued
    contents — which is all the detectors store (0/1 indicator bits) — so it
    always equals a fresh ``sum()`` over the contents bit-for-bit.
    """

    __slots__ = ("_capacity", "_buffer", "_start", "_size", "_sum")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._capacity = capacity
        self._buffer = np.zeros(capacity, dtype=np.float64)
        self._start = 0
        self._size = 0
        self._sum = 0.0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def sum(self) -> float:
        """Sum of the current contents (exact for integer-valued contents)."""
        return self._sum

    def __len__(self) -> int:
        return self._size

    def oldest(self) -> float:
        """The element that would be evicted next.

        Raises :class:`ValueError` when the window is empty (or was just
        cleared) — the backing buffer slot holds stale or zero-initialised
        memory in that state, never a real element.
        """
        if self._size == 0:
            raise ValueError("oldest() on an empty RingWindow")
        return float(self._buffer[self._start])

    def append(self, value: float) -> float | None:
        """Push one value, returning the evicted element (or ``None``)."""
        evicted: float | None = None
        if self._size == self._capacity:
            evicted = float(self._buffer[self._start])
            self._sum -= evicted
            self._buffer[self._start] = value
            self._start = (self._start + 1) % self._capacity
        else:
            self._buffer[(self._start + self._size) % self._capacity] = value
            self._size += 1
        self._sum += value
        return evicted

    def values(self) -> np.ndarray:
        """Contents in chronological order (oldest first), as a copy."""
        idx = (self._start + np.arange(self._size)) % self._capacity
        return self._buffer[idx]

    def assign(self, values: np.ndarray) -> None:
        """Replace the contents with (the tail of) ``values``, oldest first."""
        values = np.asarray(values, dtype=np.float64)[-self._capacity :]
        self._size = values.shape[0]
        self._start = 0
        self._buffer[: self._size] = values
        self._sum = float(values.sum())

    def clear(self) -> None:
        self._start = 0
        self._size = 0
        self._sum = 0.0


# ------------------------------------------------------------ StackedRingWindow
class StackedRingWindow(Snapshotable):
    """N independent :class:`RingWindow`\\ s in struct-of-arrays form.

    One ``(n_lanes, capacity)`` buffer plus per-lane start/size/sum arrays
    holds the sliding windows of N independent detector instances, so a whole
    fleet of windowed detectors (FHDDM's correctness windows, RDDM's stored
    error logs) advances with a handful of fancy-indexed NumPy ops instead of
    N scalar appends.  Every lane follows the scalar :class:`RingWindow`
    recurrences exactly — the maintained sums use the same ``+=``/``-=``
    order, so they are bit-identical for the integer-valued contents the
    detectors store.

    The vectorized mutators take a ``lanes`` index array that must not
    contain duplicates (fancy-index writes would silently drop all but one
    update); the fleet engine guarantees this by decomposing ragged batches
    into rounds of distinct lanes.
    """

    __slots__ = ("_n_lanes", "_capacity", "_buffer", "_start", "_size", "_sums")

    def __init__(self, n_lanes: int, capacity: int) -> None:
        if n_lanes < 1:
            raise ValueError("n_lanes must be >= 1")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._n_lanes = n_lanes
        self._capacity = capacity
        self._buffer = np.zeros((n_lanes, capacity), dtype=np.float64)
        self._start = np.zeros(n_lanes, dtype=np.int64)
        self._size = np.zeros(n_lanes, dtype=np.int64)
        self._sums = np.zeros(n_lanes, dtype=np.float64)

    @property
    def n_lanes(self) -> int:
        return self._n_lanes

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def sums(self) -> np.ndarray:
        """Per-lane window sums (read-only view; exact for integer contents)."""
        return self._sums

    @property
    def sizes(self) -> np.ndarray:
        """Per-lane element counts (read-only view)."""
        return self._size

    def append_at(self, lanes: np.ndarray, values: np.ndarray) -> None:
        """Push one value per lane (lanes distinct), evicting where full."""
        full = self._size[lanes] == self._capacity
        full_lanes = lanes[full]
        if full_lanes.shape[0]:
            starts = self._start[full_lanes]
            evicted = self._buffer[full_lanes, starts]
            self._sums[full_lanes] -= evicted
            self._buffer[full_lanes, starts] = values[full]
            self._start[full_lanes] = (starts + 1) % self._capacity
        grow_lanes = lanes[~full]
        if grow_lanes.shape[0]:
            slots = (
                self._start[grow_lanes] + self._size[grow_lanes]
            ) % self._capacity
            self._buffer[grow_lanes, slots] = values[~full]
            self._size[grow_lanes] += 1
        self._sums[lanes] += values

    def values_at(self, lane: int) -> np.ndarray:
        """One lane's contents in chronological order (oldest first), copied."""
        size = int(self._size[lane])
        idx = (int(self._start[lane]) + np.arange(size)) % self._capacity
        return self._buffer[lane, idx]

    def oldest_at(self, lane: int) -> float:
        """One lane's next-to-evict element; raises on an empty lane."""
        if self._size[lane] == 0:
            raise ValueError(f"oldest_at() on empty lane {lane}")
        return float(self._buffer[lane, self._start[lane]])

    def clear_lanes(self, lanes: np.ndarray) -> None:
        """Reset the given lanes to empty (their buffer rows become stale)."""
        self._start[lanes] = 0
        self._size[lanes] = 0
        self._sums[lanes] = 0.0


# ---------------------------------------------------------- ExponentialBuckets
_MAX_BUCKETS_PER_ROW = 5


class ExponentialBuckets(Snapshotable):
    """ADWIN's exponential histogram: rows of buckets of ``2**level`` elements.

    Compression keeps at most ``max_per_row`` buckets per row; overflowing
    buckets are pairwise-merged into the next row with the exact variance
    merge formula of Bifet & Gavalda.  The structure only stores buckets —
    the aggregate window statistics (width/total/variance) stay with the
    caller, which mirrors the original ADWIN bookkeeping and keeps the
    arithmetic identical.
    """

    __slots__ = ("_max_per_row", "_totals", "_variances")

    def __init__(self, max_per_row: int = _MAX_BUCKETS_PER_ROW) -> None:
        self._max_per_row = max_per_row
        # One list per level; index 0 holds single elements.
        self._totals: list[list[float]] = [[]]
        self._variances: list[list[float]] = [[]]

    @property
    def n_levels(self) -> int:
        return len(self._totals)

    def clear(self) -> None:
        self._totals = [[]]
        self._variances = [[]]

    def append(self, value: float) -> None:
        """Insert one element and run the compression cascade."""
        self._totals[0].append(value)
        self._variances[0].append(0.0)
        level = 0
        while level < len(self._totals):
            row = self._totals[level]
            if len(row) <= self._max_per_row:
                break
            if level + 1 == len(self._totals):
                self._totals.append([])
                self._variances.append([])
            total_1 = row.pop(0)
            total_2 = row.pop(0)
            variance_1 = self._variances[level].pop(0)
            variance_2 = self._variances[level].pop(0)
            n = float(2**level)
            mean_1, mean_2 = total_1 / n, total_2 / n
            merged_variance = (
                variance_1
                + variance_2
                + n * n / (2.0 * n) * (mean_1 - mean_2) * (mean_1 - mean_2)
            )
            self._totals[level + 1].append(total_1 + total_2)
            self._variances[level + 1].append(merged_variance)
            level += 1

    def oldest_first(self) -> Iterator[tuple[float, float, float]]:
        """Yield ``(size, total, variance)`` from the oldest bucket onwards."""
        for level in range(len(self._totals) - 1, -1, -1):
            size = float(2**level)
            for total, variance in zip(self._totals[level], self._variances[level]):
                yield size, total, variance

    def arrays_oldest_first(self) -> tuple[np.ndarray, np.ndarray]:
        """``(sizes, totals)`` arrays oldest-first, for vectorized cut scans."""
        sizes: list[float] = []
        totals: list[float] = []
        for level in range(len(self._totals) - 1, -1, -1):
            row = self._totals[level]
            if row:
                sizes.extend([float(2**level)] * len(row))
                totals.extend(row)
        return (
            np.asarray(sizes, dtype=np.float64),
            np.asarray(totals, dtype=np.float64),
        )

    def pop_oldest(self) -> tuple[float, float, float] | None:
        """Drop and return the oldest bucket as ``(size, total, variance)``."""
        level = len(self._totals) - 1
        while level >= 0 and not self._totals[level]:
            level -= 1
        if level < 0:
            return None
        size = float(2**level)
        total = self._totals[level].pop(0)
        variance = self._variances[level].pop(0)
        return size, total, variance
