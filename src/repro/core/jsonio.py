"""Strict-JSON serialisation helpers shared by the result sinks.

``json.dumps`` happily emits ``NaN`` / ``Infinity`` / ``-Infinity`` — Python
extensions that are **not** JSON: ``sqlite``'s ``json()`` functions, parquet
writers, ``jq``, and most non-Python consumers reject them outright.  Cell
records do contain non-finite floats in practice (``wall_time`` of a cell
written off after repeated broken pools is ``nan``; ``mean_delay`` of a
drift report with zero detected drifts is ``nan``), so every record sink
funnels through :func:`dumps_strict`, which serialises non-finite floats as
``null``.

Reads stay *tolerant*: records written before this module existed may carry
bare ``NaN`` tokens, and :func:`json.loads` accepts them by default.  Use
:func:`loads_strict` only where the point is to *verify* that a payload is
strict JSON.
"""

from __future__ import annotations

import json
import math

__all__ = ["sanitize_nonfinite", "dumps_strict", "loads_strict"]


def sanitize_nonfinite(value):
    """``value`` with every non-finite float replaced by ``None``, recursively.

    Containers are rebuilt (tuples become lists, matching what JSON
    round-trips produce anyway); everything else is returned as-is.
    """
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {key: sanitize_nonfinite(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [sanitize_nonfinite(item) for item in value]
    return value


def dumps_strict(value, **kwargs) -> str:
    """``json.dumps`` that can never emit a non-strict constant.

    Non-finite floats are serialised as ``null``; ``allow_nan=False`` stays
    on as a belt-and-braces guard so any non-finite value that slips past the
    sanitiser raises instead of corrupting the store.
    """
    return json.dumps(sanitize_nonfinite(value), allow_nan=False, **kwargs)


def _reject_constant(token: str):
    raise ValueError(f"non-strict JSON constant {token!r}")


def loads_strict(payload: str):
    """``json.loads`` that rejects ``NaN`` / ``Infinity`` / ``-Infinity``."""
    return json.loads(payload, parse_constant=_reject_constant)
