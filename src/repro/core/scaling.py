"""Online feature scaling for the RBM visible layer.

Restricted Boltzmann Machines expect visible units in [0, 1].  Streaming data
arrives unscaled and its range may itself drift, so the scaler tracks running
minima and maxima (optionally with slow decay towards the recent data range)
and maps features into the unit interval on the fly.
"""

from __future__ import annotations

import numpy as np

from repro.core.snapshot import Snapshotable

__all__ = ["OnlineMinMaxScaler"]


class OnlineMinMaxScaler(Snapshotable):
    """Streaming min-max scaler to the unit interval.

    Parameters
    ----------
    n_features:
        Dimensionality of the feature vectors.
    forget:
        Per-update shrink factor pulling the tracked range towards the most
        recent batch (0 = never forget the historical range).  A small value
        such as 0.001 lets the scaler follow virtual drifts of the feature
        distribution without destabilising the representation.
    """

    def __init__(self, n_features: int, forget: float = 0.0) -> None:
        if n_features < 1:
            raise ValueError("n_features must be >= 1")
        if not 0.0 <= forget < 1.0:
            raise ValueError("forget must be in [0, 1)")
        self._n_features = n_features
        self._forget = forget
        self._min = np.full(n_features, np.inf)
        self._max = np.full(n_features, -np.inf)
        self._span = np.ones(n_features)
        self._fitted = False

    @property
    def fitted(self) -> bool:
        return self._fitted

    @property
    def data_range(self) -> tuple[np.ndarray, np.ndarray]:
        """Currently tracked (min, max) per feature."""
        return self._min.copy(), self._max.copy()

    def partial_fit(self, X: np.ndarray) -> "OnlineMinMaxScaler":
        """Update the tracked range with a batch of rows."""
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if X.shape[1] != self._n_features:
            raise ValueError(
                f"expected {self._n_features} features, got {X.shape[1]}"
            )
        batch_min = X.min(axis=0)
        batch_max = X.max(axis=0)
        if self._fitted and self._forget > 0.0:
            centre = (self._min + self._max) / 2.0
            self._min += self._forget * (centre - self._min)
            self._max += self._forget * (centre - self._max)
        self._min = np.minimum(self._min, batch_min)
        self._max = np.maximum(self._max, batch_max)
        # The degenerate-range guard is fit-invariant, so it is materialised
        # here instead of on every transform call.
        span = self._max - self._min
        self._span = np.where(span > 1e-12, span, 1.0)
        self._fitted = True
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Scale a batch of rows into [0, 1] (clipping out-of-range values)."""
        if not self._fitted:
            raise RuntimeError("scaler must be fitted before transform")
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        scaled = X - self._min
        scaled /= self._span
        np.clip(scaled, 0.0, 1.0, out=scaled)
        return scaled

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.partial_fit(X).transform(X)

    def partial_fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fused :meth:`partial_fit` + :meth:`transform` for pre-shaped rows.

        Assumes ``X`` is already a 2-D float64 array of the right width (the
        detector's mini-batch buffer); skips the per-call validation and the
        second pass over the dispatch machinery.
        """
        batch_min = X.min(axis=0)
        batch_max = X.max(axis=0)
        if self._fitted and self._forget > 0.0:
            centre = (self._min + self._max) / 2.0
            self._min += self._forget * (centre - self._min)
            self._max += self._forget * (centre - self._max)
        self._min = np.minimum(self._min, batch_min)
        self._max = np.maximum(self._max, batch_max)
        span = self._max - self._min
        self._span = np.where(span > 1e-12, span, 1.0)
        self._fitted = True
        scaled = X - self._min
        scaled /= self._span
        np.clip(scaled, 0.0, 1.0, out=scaled)
        return scaled
