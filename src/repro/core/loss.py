"""Skew-insensitive (class-balanced) loss weighting for RBM-IM.

The paper makes the RBM robust to class imbalance by re-weighting each
instance's contribution to the loss with the *effective number of samples*
(Cui et al., CVPR 2019).  For a class that has been observed ``n_m`` times the
effective number is ``E_m = (1 - beta^n_m) / (1 - beta)`` and the instance
weight is proportional to ``1 / E_m``, i.e. ``(1 - beta) / (1 - beta^n_m)``
(Eq. 13 of the paper).  Minority classes therefore contribute much more per
instance than majority classes, keeping the learned representation (and hence
the reconstruction error used for drift detection) unbiased.

:class:`ClassBalancedWeighter` keeps *running* class counts so the weighting
adapts as the stream's imbalance ratio and class roles evolve, optionally with
exponential decay so outdated counts are forgotten.
"""

from __future__ import annotations

import numpy as np

from repro.core.snapshot import Snapshotable

__all__ = ["effective_number", "class_balanced_weights", "ClassBalancedWeighter"]


def effective_number(counts: np.ndarray, beta: float) -> np.ndarray:
    """Effective number of samples ``(1 - beta^n) / (1 - beta)`` per class.

    ``beta = 0`` reduces to 1 for every observed class (no re-weighting by
    volume); ``beta -> 1`` approaches the raw counts (inverse-frequency
    weighting).
    """
    if not 0.0 <= beta < 1.0:
        raise ValueError("beta must be in [0, 1)")
    counts = np.asarray(counts, dtype=np.float64)
    if beta == 0.0:
        return np.where(counts > 0, 1.0, 0.0)
    return (1.0 - np.power(beta, counts)) / (1.0 - beta)


def class_balanced_weights(
    counts: np.ndarray, beta: float, normalise: bool = True
) -> np.ndarray:
    """Per-class weights inversely proportional to the effective sample number.

    Classes that have never been observed receive the maximum weight among the
    observed classes (they are at least as "minority" as the rarest seen
    class).  When ``normalise`` is True the weights are rescaled to average 1
    over the observed classes, so the global learning-rate scale is preserved.
    """
    counts = np.asarray(counts, dtype=np.float64)
    effective = effective_number(counts, beta)
    weights = np.zeros_like(effective)
    observed = effective > 0
    weights[observed] = 1.0 / effective[observed]
    if observed.any():
        weights[~observed] = weights[observed].max()
    else:
        weights[:] = 1.0
    if normalise and observed.any():
        weights = weights / weights[observed].mean()
    return weights


class ClassBalancedWeighter(Snapshotable):
    """Running class-balanced instance weighting for streaming data.

    Parameters
    ----------
    n_classes:
        Number of classes in the stream.
    beta:
        Effective-number hyper-parameter in ``[0, 1)``; 0.999 by default,
        following Cui et al.
    decay:
        Optional exponential decay applied to the running class counts before
        each update, letting the weighting follow changing imbalance ratios
        and class-role switches.  ``1.0`` disables forgetting.
    """

    def __init__(
        self, n_classes: int, beta: float = 0.999, decay: float = 1.0
    ) -> None:
        if n_classes < 2:
            raise ValueError("n_classes must be >= 2")
        if not 0.0 <= beta < 1.0:
            raise ValueError("beta must be in [0, 1)")
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        self._n_classes = n_classes
        self._beta = beta
        self._decay = decay
        self._counts = np.zeros(n_classes, dtype=np.float64)
        # Sticky: counts can only grow (decay never zeroes a positive count),
        # so once every class has been seen the check short-circuits forever.
        self._all_seen = False
        self._weight_scratch = np.empty(n_classes)

    _SNAPSHOT_EXCLUDE = frozenset({"_weight_scratch"})

    def _after_restore(self) -> None:
        self._weight_scratch = np.empty(self._n_classes)

    @property
    def counts(self) -> np.ndarray:
        """Running (possibly decayed) per-class observation counts."""
        return self._counts.copy()

    @property
    def beta(self) -> float:
        return self._beta

    def observe(self, labels: np.ndarray) -> None:
        """Update the running counts with a batch of labels."""
        labels = np.asarray(labels, dtype=np.int64)
        if labels.size == 0:
            return
        if labels.min() < 0 or labels.max() >= self._n_classes:
            raise ValueError("label out of range")
        if self._decay < 1.0:
            self._counts *= self._decay
        self._counts += np.bincount(labels, minlength=self._n_classes)

    def class_weights(self) -> np.ndarray:
        """Current per-class weights (normalised to mean 1 over seen classes)."""
        return class_balanced_weights(self._counts, self._beta)

    def instance_weights(self, labels: np.ndarray) -> np.ndarray:
        """Weights for a batch of labels under the current class counts."""
        labels = np.asarray(labels, dtype=np.int64)
        return self.class_weights()[labels]

    def observe_weights(self, labels: np.ndarray) -> np.ndarray:
        """Fused :meth:`observe` + :meth:`instance_weights` for the hot path.

        Assumes the caller already validated the labels.  Once every class
        has been seen, the weights reduce to ``(1/E_m) / mean(1/E)`` — the
        ``(1 - beta)`` factor cancels under normalisation — which needs a
        handful of ufunc calls instead of the general masked computation.
        """
        if self._decay < 1.0:
            self._counts *= self._decay
        self._counts += np.bincount(labels, minlength=self._n_classes)
        counts = self._counts
        if not self._all_seen:
            if not counts.all():
                return class_balanced_weights(counts, self._beta)[labels]
            self._all_seen = True
        if self._beta == 0.0:
            return class_balanced_weights(counts, self._beta)[labels]
        buf = self._weight_scratch
        np.power(self._beta, counts, out=buf)
        np.subtract(1.0, buf, out=buf)
        np.reciprocal(buf, out=buf)
        buf /= buf.mean()
        return buf[labels]

    def reset(self) -> None:
        self._counts[:] = 0.0
        self._all_seen = False
