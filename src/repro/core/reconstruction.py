"""Per-class reconstruction error (Eqs. 22-27 of the paper).

RBM-IM detects drifts by comparing newly arrived instances against the
compressed representation of previous concepts stored inside the RBM.  The
similarity measure is the reconstruction error: each instance is clamped to
the visible and class layers, the hidden layer is inferred, and features plus
class scores are reconstructed; the root of the summed squared differences is
the instance's reconstruction error (Eq. 26).  Errors are then averaged *per
class* over the current mini-batch (Eq. 27), which is what enables per-class
(local) drift detection.
"""

from __future__ import annotations

import numpy as np

from repro.core.rbm import SkewInsensitiveRBM

__all__ = [
    "instance_reconstruction_errors",
    "reconstruction_errors_from_hidden",
    "per_class_reconstruction_error",
]


def reconstruction_errors_from_hidden(
    rbm: SkewInsensitiveRBM,
    X: np.ndarray,
    z0: np.ndarray,
    h: np.ndarray,
    recon_out: np.ndarray | None = None,
) -> np.ndarray:
    """Eq. 26 errors from precomputed one-hot labels and hidden activations.

    The hidden probabilities for the clamped ``(v, z)`` pair are exactly what
    the subsequent CD training step needs for its positive phase, so RBM-IM
    computes them once per mini-batch and feeds them both here and into
    :meth:`SkewInsensitiveRBM.partial_fit`.  ``recon_out``, when given, is a
    ``(n, n_visible + n_classes)`` scratch buffer the reconstruction is
    written into (its contents are clobbered).
    """
    recon = rbm.reconstruct_packed(h, out=recon_out)
    split = X.shape[1]
    recon[:, :split] -= X
    recon[:, split:] -= z0
    return np.sqrt(np.einsum("ij,ij->i", recon, recon))


def instance_reconstruction_errors(
    rbm: SkewInsensitiveRBM, X: np.ndarray, y: np.ndarray
) -> np.ndarray:
    """Reconstruction error of every instance in the batch (Eq. 26).

    Parameters
    ----------
    rbm:
        The trained (or partially trained) skew-insensitive RBM.
    X:
        Feature rows scaled to [0, 1].
    y:
        Integer labels.

    Returns
    -------
    numpy.ndarray
        One non-negative error per instance.
    """
    X = np.atleast_2d(np.asarray(X, dtype=np.float64))
    y = np.asarray(y, dtype=np.int64)
    one_hot = np.zeros((y.shape[0], rbm.config.n_classes))
    one_hot[np.arange(y.shape[0]), y] = 1.0
    h = rbm.hidden_probabilities(X, one_hot)
    return reconstruction_errors_from_hidden(rbm, X, one_hot, h)


def per_class_reconstruction_error(
    rbm: SkewInsensitiveRBM, X: np.ndarray, y: np.ndarray, n_classes: int
) -> tuple[np.ndarray, np.ndarray]:
    """Average reconstruction error per class over a mini-batch (Eq. 27).

    Returns
    -------
    (errors, counts):
        ``errors[m]`` is the mean reconstruction error of class ``m`` within
        the batch (NaN when the class is absent from the batch), and
        ``counts[m]`` the number of its instances in the batch.
    """
    errors = instance_reconstruction_errors(rbm, X, y)
    y = np.asarray(y, dtype=np.int64)
    per_class = np.full(n_classes, np.nan)
    counts = np.bincount(y, minlength=n_classes).astype(np.int64)
    for label in range(n_classes):
        mask = y == label
        if mask.any():
            per_class[label] = float(errors[mask].mean())
    return per_class, counts
