"""Per-class reconstruction error (Eqs. 22-27 of the paper).

RBM-IM detects drifts by comparing newly arrived instances against the
compressed representation of previous concepts stored inside the RBM.  The
similarity measure is the reconstruction error: each instance is clamped to
the visible and class layers, the hidden layer is inferred, and features plus
class scores are reconstructed; the root of the summed squared differences is
the instance's reconstruction error (Eq. 26).  Errors are then averaged *per
class* over the current mini-batch (Eq. 27), which is what enables per-class
(local) drift detection.
"""

from __future__ import annotations

import numpy as np

from repro.core.rbm import SkewInsensitiveRBM

__all__ = ["instance_reconstruction_errors", "per_class_reconstruction_error"]


def instance_reconstruction_errors(
    rbm: SkewInsensitiveRBM, X: np.ndarray, y: np.ndarray
) -> np.ndarray:
    """Reconstruction error of every instance in the batch (Eq. 26).

    Parameters
    ----------
    rbm:
        The trained (or partially trained) skew-insensitive RBM.
    X:
        Feature rows scaled to [0, 1].
    y:
        Integer labels.

    Returns
    -------
    numpy.ndarray
        One non-negative error per instance.
    """
    X = np.atleast_2d(np.asarray(X, dtype=np.float64))
    y = np.asarray(y, dtype=np.int64)
    x_recon, z_recon = rbm.reconstruct(X, y)
    one_hot = np.zeros_like(z_recon)
    one_hot[np.arange(y.shape[0]), y] = 1.0
    feature_part = np.sum((X - x_recon) ** 2, axis=1)
    class_part = np.sum((one_hot - z_recon) ** 2, axis=1)
    return np.sqrt(feature_part + class_part)


def per_class_reconstruction_error(
    rbm: SkewInsensitiveRBM, X: np.ndarray, y: np.ndarray, n_classes: int
) -> tuple[np.ndarray, np.ndarray]:
    """Average reconstruction error per class over a mini-batch (Eq. 27).

    Returns
    -------
    (errors, counts):
        ``errors[m]`` is the mean reconstruction error of class ``m`` within
        the batch (NaN when the class is absent from the batch), and
        ``counts[m]`` the number of its instances in the batch.
    """
    errors = instance_reconstruction_errors(rbm, X, y)
    y = np.asarray(y, dtype=np.int64)
    per_class = np.full(n_classes, np.nan)
    counts = np.bincount(y, minlength=n_classes).astype(np.int64)
    for label in range(n_classes):
        mask = y == label
        if mask.any():
            per_class[label] = float(errors[mask].mean())
    return per_class, counts
