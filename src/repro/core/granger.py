"""First-difference Granger causality test (Section V-B of the paper).

RBM-IM decides whether a class has drifted by testing whether the trend of its
reconstruction error over the *previous* window of mini-batches still helps to
forecast the trend over the *current* window.  Because reconstruction-error
trends are non-stationary, the test is performed on first differences of the
two series (the variation recommended for non-stationary processes).

The implementation is a standard lag-``p`` Granger test: an OLS autoregression
of the target series on its own lags (restricted model) is compared with an
autoregression that additionally includes lags of the candidate causal series
(unrestricted model) through an F-test on the residual sums of squares.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import special

__all__ = [
    "GrangerResult",
    "granger_causality",
    "granger_causality_lag1_diff",
    "first_differences",
]


@dataclass(frozen=True)
class GrangerResult:
    """Outcome of a Granger causality test.

    Attributes
    ----------
    f_statistic:
        F statistic of the restricted-vs-unrestricted comparison.
    p_value:
        p-value of the F statistic; small values reject the null hypothesis
        that the candidate series does **not** Granger-cause the target.
    causality:
        True when the null of "no causality" is rejected at ``alpha``, i.e.
        the previous trend still forecasts the current one (no drift).
    lags:
        Lag order used.
    n_observations:
        Number of usable observations after lagging/differencing.
    """

    f_statistic: float
    p_value: float
    causality: bool
    lags: int
    n_observations: int


def first_differences(series: np.ndarray) -> np.ndarray:
    """First differences of a 1-D series (length shrinks by one)."""
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 1:
        raise ValueError("series must be one-dimensional")
    if series.shape[0] < 2:
        raise ValueError("series must have at least two observations")
    return np.diff(series)


def _is_constant(series: np.ndarray) -> bool:
    """Cheap equivalent of ``np.allclose(series, series[0])``."""
    reference = series[0]
    tolerance = 1e-8 + 1e-5 * np.abs(reference)
    return bool(np.all(np.abs(series - reference) <= tolerance))


def _lag_matrix(series: np.ndarray, lags: int) -> np.ndarray:
    """Design matrix whose columns are the series lagged by 1..lags."""
    n = series.shape[0] - lags
    columns = [series[lags - k - 1 : lags - k - 1 + n] for k in range(lags)]
    return np.column_stack(columns)


def _solve_spd(gram: np.ndarray, moment: np.ndarray) -> np.ndarray | None:
    """Solve the (symmetric) normal equations; None when singular.

    Closed forms for the 2x2 / 3x3 systems that lag order 1 produces — the
    overwhelmingly common case in RBM-IM — avoid the LAPACK dispatch overhead
    of ``np.linalg.solve`` at these sizes.
    """
    k = gram.shape[0]
    if k == 2:
        (a, b), (c, d) = gram
        det = a * d - b * c
        # Relative singularity test: gram entries scale with the (often
        # tiny) variance of the series, so an absolute cutoff is useless.
        if abs(det) <= 1e-12 * (abs(a * d) + abs(b * c)):
            return None
        return np.array(
            [
                (d * moment[0] - b * moment[1]) / det,
                (a * moment[1] - c * moment[0]) / det,
            ]
        )
    if k == 3:
        a, b, c = gram[0]
        d, e, f = gram[1]
        g, h, i = gram[2]
        co_a = e * i - f * h
        co_b = f * g - d * i
        co_c = d * h - e * g
        det = a * co_a + b * co_b + c * co_c
        scale = abs(a * co_a) + abs(b * co_b) + abs(c * co_c)
        if abs(det) <= 1e-12 * scale:
            return None
        inverse = np.array(
            [
                [co_a, c * h - b * i, b * f - c * e],
                [co_b, a * i - c * g, c * d - a * f],
                [co_c, b * g - a * h, a * e - b * d],
            ]
        )
        return inverse @ moment / det
    try:
        return np.linalg.solve(gram, moment)
    except np.linalg.LinAlgError:
        return None


def _ols_rss(design: np.ndarray, target: np.ndarray) -> float:
    """Residual sum of squares of an OLS fit (with intercept).

    The design matrices here are tiny (a handful of rows, ``2 * lags + 1``
    columns at most), so the normal equations are solved directly — an order
    of magnitude faster than ``lstsq`` at these sizes — with an ``lstsq``
    fallback for singular systems.
    """
    n = design.shape[0]
    augmented = np.empty((n, design.shape[1] + 1))
    augmented[:, 0] = 1.0
    augmented[:, 1:] = design
    gram = augmented.T @ augmented
    moment = augmented.T @ target
    coefficients = _solve_spd(gram, moment)
    if coefficients is None:
        coefficients, _, _, _ = np.linalg.lstsq(augmented, target, rcond=None)
    residuals = target - augmented @ coefficients
    return float(residuals @ residuals)


def _f_sf(f_statistic: float, df_num: int, df_den: int) -> float:
    """Survival function of the F distribution via the regularized beta.

    Identical to ``scipy.stats.f.sf`` (same identity, same ``betainc``
    kernel) without the distribution-framework dispatch overhead that
    dominates at RBM-IM's calling frequency.
    """
    if f_statistic <= 0.0:
        return 1.0
    x = df_den / (df_den + df_num * f_statistic)
    return float(special.betainc(df_den / 2.0, df_num / 2.0, x))


def _constant_scalar(series: list[float]) -> bool:
    """Scalar twin of :func:`_is_constant` for short Python-float series."""
    reference = series[0]
    tolerance = 1e-8 + 1e-5 * abs(reference)
    return all(abs(v - reference) <= tolerance for v in series)


def granger_causality_lag1_diff(
    cause, effect, alpha: float = 0.05
) -> bool:
    """Decision-only fast path: lag-1 Granger test on first differences.

    Computes the identical restricted/unrestricted OLS comparison as
    ``granger_causality(cause, effect, lags=1, use_first_differences=True)``
    but entirely in scalar arithmetic, which is an order of magnitude faster
    at the series lengths RBM-IM tests every mini-batch (two
    ``granger_segment``-long trend windows).  Returns only the ``causality``
    decision; degenerate inputs fall back to the array implementation so the
    two paths cannot disagree on the conservative defaults.
    """
    length = min(len(cause), len(effect))
    if length < 2:
        return True
    cause = cause[-length:]
    effect = effect[-length:]
    # First differences, then one observation consumed by the lag.
    dc = [cause[i + 1] - cause[i] for i in range(length - 1)]
    de = [effect[i + 1] - effect[i] for i in range(length - 1)]
    m = length - 1
    n = m - 1  # usable observations
    if n < 4:  # 2 * lags + 2 parameters at lags=1
        return True
    if _constant_scalar(de) or _constant_scalar(dc):
        return True

    # Restricted model: de[t] ~ 1 + de[t-1].
    sy = sx1 = sx2 = s11 = s22 = s12 = s1y = s2y = 0.0
    for t in range(n):
        y_t = de[t + 1]
        x1 = de[t]
        x2 = dc[t]
        sy += y_t
        sx1 += x1
        sx2 += x2
        s11 += x1 * x1
        s22 += x2 * x2
        s12 += x1 * x2
        s1y += x1 * y_t
        s2y += x2 * y_t
    fn = float(n)
    det_r = fn * s11 - sx1 * sx1
    if abs(det_r) <= 1e-12 * (abs(fn * s11) + sx1 * sx1):
        # Singular normal equations: defer to the lstsq-backed general path.
        return granger_causality(
            np.asarray(cause, dtype=np.float64),
            np.asarray(effect, dtype=np.float64),
            lags=1,
            alpha=alpha,
            use_first_differences=True,
        ).causality
    b1 = (fn * s1y - sx1 * sy) / det_r
    b0 = (sy - b1 * sx1) / fn
    rss_r = 0.0
    for t in range(n):
        resid = de[t + 1] - b0 - b1 * de[t]
        rss_r += resid * resid

    # Unrestricted model: de[t] ~ 1 + de[t-1] + dc[t-1] (3x3 normal equations
    # solved by cofactors, mirroring _solve_spd's closed form).
    a, b, c = fn, sx1, sx2
    d, e, f = sx1, s11, s12
    g, h, i = sx2, s12, s22
    co_a = e * i - f * h
    co_b = f * g - d * i
    co_c = d * h - e * g
    det_u = a * co_a + b * co_b + c * co_c
    scale = abs(a * co_a) + abs(b * co_b) + abs(c * co_c)
    if abs(det_u) <= 1e-12 * scale:
        return granger_causality(
            np.asarray(cause, dtype=np.float64),
            np.asarray(effect, dtype=np.float64),
            lags=1,
            alpha=alpha,
            use_first_differences=True,
        ).causality
    u0 = (co_a * sy + (c * h - b * i) * s1y + (b * f - c * e) * s2y) / det_u
    u1 = (co_b * sy + (a * i - c * g) * s1y + (c * d - a * f) * s2y) / det_u
    u2 = (co_c * sy + (b * g - a * h) * s1y + (a * e - b * d) * s2y) / det_u
    rss_u = 0.0
    for t in range(n):
        resid = de[t + 1] - u0 - u1 * de[t] - u2 * dc[t]
        rss_u += resid * resid

    df_den = n - 3
    if df_den <= 0 or rss_u <= 1e-18:
        return True
    f_statistic = (rss_r - rss_u) / (rss_u / df_den)
    if f_statistic < 0.0:
        f_statistic = 0.0
    return _f_sf(f_statistic, 1, df_den) < alpha


def granger_causality(
    cause: np.ndarray,
    effect: np.ndarray,
    lags: int = 1,
    alpha: float = 0.05,
    use_first_differences: bool = True,
) -> GrangerResult:
    """Test whether ``cause`` Granger-causes ``effect``.

    Parameters
    ----------
    cause:
        Candidate causal series (the previous window's trend in RBM-IM).
    effect:
        Target series (the current window's trend in RBM-IM).
    lags:
        Lag order of both autoregressions.
    alpha:
        Significance level of the F-test.
    use_first_differences:
        Difference both series first (the non-stationary variant used by the
        paper).

    Returns
    -------
    GrangerResult
        ``causality`` is True when the null hypothesis of no causality is
        rejected.  When the series are too short or degenerate (constant), the
        test is inconclusive and ``causality`` is reported as True with a
        p-value of 1.0 — the conservative outcome that RBM-IM maps to "no
        drift evidence".
    """
    cause = np.asarray(cause, dtype=np.float64)
    effect = np.asarray(effect, dtype=np.float64)
    if cause.ndim != 1 or effect.ndim != 1:
        raise ValueError("cause and effect must be one-dimensional series")
    if lags < 1:
        raise ValueError("lags must be >= 1")
    length = min(cause.shape[0], effect.shape[0])
    cause = cause[-length:]
    effect = effect[-length:]

    if use_first_differences:
        if length < 2:
            return GrangerResult(0.0, 1.0, True, lags, 0)
        cause = first_differences(cause)
        effect = first_differences(effect)
        length -= 1

    n_usable = length - lags
    # Need enough observations to estimate 2 * lags + 1 parameters.
    if n_usable < 2 * lags + 2:
        return GrangerResult(0.0, 1.0, True, lags, max(n_usable, 0))
    if _is_constant(effect) or _is_constant(cause):
        return GrangerResult(0.0, 1.0, True, lags, n_usable)

    target = effect[lags:]
    own_lags = _lag_matrix(effect, lags)
    cause_lags = _lag_matrix(cause, lags)

    rss_restricted = _ols_rss(own_lags, target)
    rss_unrestricted = _ols_rss(np.column_stack([own_lags, cause_lags]), target)

    df_num = lags
    df_den = n_usable - 2 * lags - 1
    if df_den <= 0 or rss_unrestricted <= 1e-18:
        return GrangerResult(0.0, 1.0, True, lags, n_usable)

    f_statistic = ((rss_restricted - rss_unrestricted) / df_num) / (
        rss_unrestricted / df_den
    )
    f_statistic = max(f_statistic, 0.0)
    p_value = _f_sf(f_statistic, df_num, df_den)
    return GrangerResult(
        f_statistic=float(f_statistic),
        p_value=p_value,
        causality=p_value < alpha,
        lags=lags,
        n_observations=n_usable,
    )
