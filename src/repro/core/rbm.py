"""Skew-insensitive Restricted Boltzmann Machine with a class layer.

Implements the neural architecture of Section V-A of the paper: a visible
layer ``v`` (features scaled to [0, 1]), a hidden layer ``h``, and a class
("softmax") layer ``z``.  Training uses Contrastive Divergence with ``k``
Gibbs steps on mini-batches (Eqs. 15-21) and the class-balanced loss weighting
of Eq. 13 via :class:`repro.core.loss.ClassBalancedWeighter`, which makes the
learned representation robust to multi-class imbalance.

The network is deliberately self-contained (pure NumPy) so the whole drift
detector has no dependencies beyond the scientific Python stack.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import special

from repro.core.hotpath import hot_path
from repro.core.loss import ClassBalancedWeighter
from repro.core.snapshot import Snapshotable, register_dataclass

__all__ = ["RBMConfig", "SkewInsensitiveRBM"]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    # expit is a single C ufunc (numerically saturating, no explicit clip
    # needed) — measurably cheaper than composing exp/add/divide at the
    # mini-batch sizes RBM-IM trains on.
    return special.expit(x)


def _softmax(x: np.ndarray) -> np.ndarray:
    shifted = x - x.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


@register_dataclass
@dataclass(frozen=True)
class RBMConfig:
    """Hyper-parameters of the skew-insensitive RBM (Table II, last block).

    Attributes
    ----------
    n_visible:
        Number of visible neurons ``V`` (= number of features).
    n_hidden:
        Number of hidden neurons ``H`` (the paper tunes it as a fraction of
        ``V``: 0.25V .. V).
    n_classes:
        Number of class neurons ``Z``.
    learning_rate:
        Gradient step ``eta`` of Eqs. 17-21.
    cd_steps:
        Number of Gibbs sampling steps ``k`` of CD-k.
    momentum:
        Classic momentum applied to all parameter updates.
    weight_decay:
        L2 penalty applied to the connection weights.
    balance_beta:
        ``beta`` of the class-balanced loss (effective number of samples).
    balance_decay:
        Forgetting factor of the running class counts used by the loss.
    seed:
        RNG seed for weight initialisation and Gibbs sampling.
    """

    n_visible: int
    n_hidden: int
    n_classes: int
    learning_rate: float = 0.05
    cd_steps: int = 1
    momentum: float = 0.5
    weight_decay: float = 1e-4
    balance_beta: float = 0.999
    balance_decay: float = 0.999
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.n_visible < 1 or self.n_hidden < 1:
            raise ValueError("layer sizes must be positive")
        if self.n_classes < 2:
            raise ValueError("n_classes must be >= 2")
        if self.learning_rate <= 0.0:
            raise ValueError("learning_rate must be positive")
        if self.cd_steps < 1:
            raise ValueError("cd_steps must be >= 1")
        if not 0.0 <= self.momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")


class SkewInsensitiveRBM(Snapshotable):
    """Three-layer (visible / hidden / class) RBM trained with weighted CD-k."""

    # Gradient and CD-k scratch is overwritten before every use; snapshots
    # carry only the learned parameters, velocities, RNG, and weighter.
    _SNAPSHOT_EXCLUDE = frozenset({
        "_grad_Wvz", "_decay_Wvz", "_grad_bias_vz", "_grad_b", "_scratch_n",
        "_vz2", "_h2", "_diff_vz", "_rand", "_less", "_h_sample", "_hk",
        "_neg_w",
    })

    def _after_restore(self) -> None:
        n_vz = self._config.n_visible + self._config.n_classes
        self._grad_Wvz = np.empty_like(self._Wvz)
        self._decay_Wvz = np.empty_like(self._Wvz)
        self._grad_bias_vz = np.empty(n_vz)
        self._grad_b = np.empty(self._config.n_hidden)
        self._scratch_n = 0

    def __init__(self, config: RBMConfig) -> None:
        self._config = config
        rng = np.random.default_rng(config.seed)
        scale = 0.01
        self._rng = rng
        # Connection weights live packed: one (V+Z, H) matrix whose first V
        # rows are W (v <-> h) and last Z rows are U.T (z <-> h), with the
        # visible and class biases packed the same way.  The CD-k update then
        # works on concatenated (v, z) rows with a single matmul/velocity
        # triple where the unpacked layout needs two of everything — at
        # streaming mini-batch sizes the dispatch overhead of those extra
        # NumPy calls dominates the arithmetic.
        n_vz = config.n_visible + config.n_classes
        self._n_visible = config.n_visible
        self._Wvz = np.empty((n_vz, config.n_hidden))
        self._Wvz[: config.n_visible] = rng.normal(
            0.0, scale, size=(config.n_visible, config.n_hidden)
        )
        self._Wvz[config.n_visible :] = rng.normal(
            0.0, scale, size=(config.n_hidden, config.n_classes)
        ).T
        self._bias_vz = np.zeros(n_vz)  # visible biases a | class biases c
        self._b = np.zeros(config.n_hidden)  # hidden biases
        self._vel_Wvz = np.zeros_like(self._Wvz)
        self._vel_bias_vz = np.zeros(n_vz)
        self._vel_b = np.zeros(config.n_hidden)
        self._weighter = ClassBalancedWeighter(
            config.n_classes, beta=config.balance_beta, decay=config.balance_decay
        )
        self._n_batches_trained = 0
        # Gradient scratch (parameter-shaped, batch-size independent).  The
        # batch-shaped training scratch is (re)allocated lazily by
        # _ensure_scratch; all scratch contents are overwritten before use,
        # so snapshots/rollbacks of the whole object stay consistent.
        self._grad_Wvz = np.empty_like(self._Wvz)
        self._decay_Wvz = np.empty_like(self._Wvz)
        self._grad_bias_vz = np.empty(n_vz)
        self._grad_b = np.empty(config.n_hidden)
        self._scratch_n = 0

    def _ensure_scratch(self, n: int) -> None:
        """(Re)allocate the batch-shaped training scratch for batch size n."""
        if self._scratch_n == n:
            return
        n_vz = self._Wvz.shape[0]
        n_hidden = self._config.n_hidden
        self._scratch_n = n
        # Packed [vz0 ; vzk] rows and [w*h0 ; -w*hk] rows: the CD-k weight
        # gradient collapses to ONE gemm over the concatenation, and the
        # hidden-bias gradient to one column sum of the h block.
        self._vz2 = np.empty((2 * n, n_vz))
        self._h2 = np.empty((2 * n, n_hidden))
        self._diff_vz = np.empty((n, n_vz))
        self._rand = np.empty((n, n_hidden))
        self._less = np.empty((n, n_hidden), dtype=bool)
        self._h_sample = np.empty((n, n_hidden))
        self._hk = np.empty((n, n_hidden))
        self._neg_w = np.empty((n, 1))

    # ---------------------------------------------------------------- state
    @property
    def config(self) -> RBMConfig:
        return self._config

    @property
    def n_batches_trained(self) -> int:
        return self._n_batches_trained

    @property
    def class_counts(self) -> np.ndarray:
        """Running class counts used by the class-balanced loss."""
        return self._weighter.counts

    @property
    def _W(self) -> np.ndarray:
        """View of the v<->h weights inside the packed parameter block."""
        return self._Wvz[: self._n_visible]

    @property
    def _U(self) -> np.ndarray:
        """View of the h<->z weights inside the packed parameter block."""
        return self._Wvz[self._n_visible :].T

    @property
    def _a(self) -> np.ndarray:
        return self._bias_vz[: self._n_visible]

    @property
    def _c(self) -> np.ndarray:
        return self._bias_vz[self._n_visible :]

    @property
    def weights(self) -> dict[str, np.ndarray]:
        """Copies of all parameters (for inspection / serialisation)."""
        return {
            "W": self._W.copy(),
            "U": self._U.copy(),
            "a": self._a.copy(),
            "b": self._b.copy(),
            "c": self._c.copy(),
        }

    # -------------------------------------------------------- conditionals
    def hidden_probabilities(self, v: np.ndarray, z: np.ndarray) -> np.ndarray:
        """``P(h_j = 1 | v, z)`` — Eq. 10."""
        split = self._n_visible
        return _sigmoid(self._b + v @ self._Wvz[:split] + z @ self._Wvz[split:])

    @hot_path
    def hidden_probabilities_packed(
        self, vz: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Eq. 10 on pre-concatenated ``[v | z]`` rows (one matmul)."""
        if out is None:
            return _sigmoid(self._b + vz @ self._Wvz)
        np.matmul(vz, self._Wvz, out=out)
        out += self._b
        special.expit(out, out=out)
        return out

    def visible_probabilities(self, h: np.ndarray) -> np.ndarray:
        """``P(v_i = 1 | h)`` — Eq. 11."""
        split = self._n_visible
        return _sigmoid(self._bias_vz[:split] + h @ self._Wvz[:split].T)

    def class_probabilities(self, h: np.ndarray) -> np.ndarray:
        """``P(z = 1_k | h)`` — softmax class layer, Eq. 12."""
        split = self._n_visible
        return _softmax(self._bias_vz[split:] + h @ self._Wvz[split:].T)

    @hot_path
    def reconstruct_packed(
        self, h: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Eqs. 11-12 fused: reconstructed ``[v | z]`` rows from hidden probs.

        Returns an ``(n, V+Z)`` array (``out`` when given, else freshly
        allocated) whose first V columns hold the sigmoid visible
        reconstruction and last Z columns the softmax class reconstruction;
        callers may mutate it freely.
        """
        if out is None:
            t = h @ self._Wvz.T
        else:
            t = np.matmul(h, self._Wvz.T, out=out)
        t += self._bias_vz
        split = self._n_visible
        visible = t[:, :split]
        special.expit(visible, out=visible)
        cls = t[:, split:]
        cls -= cls.max(axis=1, keepdims=True)
        np.exp(cls, out=cls)
        cls /= cls.sum(axis=1, keepdims=True)
        return t

    def energy(self, v: np.ndarray, h: np.ndarray, z: np.ndarray) -> np.ndarray:
        """Energy function of Eq. 8 evaluated per row of the batch."""
        v = np.atleast_2d(v)
        h = np.atleast_2d(h)
        z = np.atleast_2d(z)
        linear = -(v @ self._a) - (h @ self._b) - (z @ self._c)
        pairwise = -np.einsum("ni,ij,nj->n", v, self._W, h) - np.einsum(
            "nj,jk,nk->n", h, self._U, z
        )
        return linear + pairwise

    def _one_hot(self, labels: np.ndarray) -> np.ndarray:
        labels = np.asarray(labels, dtype=np.int64)
        if labels.min() < 0 or labels.max() >= self._config.n_classes:
            raise ValueError("label out of range")
        encoded = np.zeros((labels.shape[0], self._config.n_classes))
        encoded[np.arange(labels.shape[0]), labels] = 1.0
        return encoded

    # ------------------------------------------------------------ training
    @hot_path
    def partial_fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        *,
        z0: np.ndarray | None = None,
        h0: np.ndarray | None = None,
        vz0: np.ndarray | None = None,
        want_error: bool = True,
    ) -> float:
        """Run one weighted CD-k update on a mini-batch.

        Parameters
        ----------
        X:
            Mini-batch of feature rows already scaled to [0, 1].
        y:
            Integer labels of the mini-batch.
        z0, h0, vz0:
            Optional precomputed one-hot labels, hidden probabilities for the
            *current* parameters, and packed ``[X | z0]`` rows (as produced by
            the reconstruction-error pass): when supplied, the positive phase
            reuses them instead of recomputing — the fused path RBM-IM drives
            every mini-batch.
        want_error:
            Skip the reconstruction-MSE summary (returning 0.0) when the
            caller does not consume it.

        Returns
        -------
        float
            Mean (unweighted) reconstruction MSE of the batch, useful as a
            cheap training-progress signal.
        """
        cfg = self._config
        y = np.asarray(y, dtype=np.int64)
        if vz0 is None:
            # The fused detector path supplies validated [X | z0] rows; only
            # the public entry needs the shape checks and the concatenation.
            X = np.atleast_2d(np.asarray(X, dtype=np.float64))
            if X.shape[0] != y.shape[0]:
                raise ValueError("X and y disagree on batch size")
            if X.shape[1] != cfg.n_visible:
                raise ValueError(
                    f"expected {cfg.n_visible} features, got {X.shape[1]}"
                )
            if z0 is None:
                z0 = self._one_hot(y)
            vz0 = np.concatenate((X, z0), axis=1)  # lint: disable=hot-path-alloc -- cold public-entry path; the fused detector path supplies vz0 pre-packed
        batch_size = vz0.shape[0]
        sample_weights = self._weighter.observe_weights(y)[:, None]
        h0_prob = h0 if h0 is not None else self.hidden_probabilities_packed(vz0)

        self._ensure_scratch(batch_size)
        n = batch_size
        vz2 = self._vz2
        vz2[:n] = vz0
        vzk = vz2[n:]

        # Gibbs chain (CD-k); the chain state after the last step is never
        # consumed, so no sample is drawn for it.
        rng = self._rng
        h_sample = self._h_sample
        rng.random(out=self._rand)
        np.less(self._rand, h0_prob, out=self._less)
        np.copyto(h_sample, self._less, casting="unsafe")
        hk_prob = h0_prob
        for step in range(cfg.cd_steps):
            self.reconstruct_packed(h_sample, out=vzk)
            hk_prob = self.hidden_probabilities_packed(vzk, out=self._hk)
            if step + 1 < cfg.cd_steps:
                rng.random(out=self._rand)
                np.less(self._rand, hk_prob, out=self._less)
                np.copyto(h_sample, self._less, casting="unsafe")

        # The sample weights enter every gradient as a diagonal matrix, so
        # they may sit on either side of each outer product; weighting the
        # (smaller) hidden side lets the whole weight gradient collapse into
        # one gemm over the packed rows:
        #   [vz0 ; vzk]^T @ [w*h0 ; -w*hk] = vz0^T(w*h0) - vzk^T(w*hk),
        # and the hidden-bias gradient into one column sum of the h block.
        h2 = self._h2
        np.negative(sample_weights, out=self._neg_w)
        np.multiply(h0_prob, sample_weights, out=h2[:n])
        np.multiply(hk_prob, self._neg_w, out=h2[n:])

        lr = cfg.learning_rate
        lr_batch = lr / batch_size
        mom = cfg.momentum
        grad_W = self._grad_Wvz
        np.matmul(vz2.T, h2, out=grad_W)
        grad_W *= lr_batch
        vel_W = self._vel_Wvz
        vel_W *= mom
        vel_W += grad_W
        np.multiply(self._Wvz, lr * cfg.weight_decay, out=self._decay_Wvz)
        vel_W -= self._decay_Wvz

        diff_vz = self._diff_vz
        np.subtract(vz0, vzk, out=diff_vz)
        diff_vz *= sample_weights
        grad_bias = self._grad_bias_vz
        diff_vz.sum(axis=0, out=grad_bias)
        grad_bias *= lr_batch
        vel_bias = self._vel_bias_vz
        vel_bias *= mom
        vel_bias += grad_bias

        grad_b = self._grad_b
        h2.sum(axis=0, out=grad_b)
        grad_b *= lr_batch
        vel_b = self._vel_b
        vel_b *= mom
        vel_b += grad_b

        self._Wvz += vel_W
        self._bias_vz += vel_bias
        self._b += vel_b

        self._n_batches_trained += 1
        if not want_error:
            return 0.0
        split = self._n_visible
        diff = vz0[:, :split] - vzk[:, :split]
        return float(np.mean(diff * diff))

    # ----------------------------------------------------------- inference
    def reconstruct(self, X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Reconstruct features and class scores for a labelled batch.

        Implements Eqs. 22-25: the hidden layer is derived from the observed
        instance (``v = x``, ``z = one_hot(y)``), then features and class
        support are reconstructed from the hidden probabilities.
        """
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        y = np.asarray(y, dtype=np.int64)
        z = self._one_hot(y)
        h = self.hidden_probabilities(X, z)
        x_recon = self.visible_probabilities(h)
        z_recon = self.class_probabilities(h)
        return x_recon, z_recon

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class-probability estimates using a free (unclamped) class layer."""
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        # With no class information, use the uniform class prior as input.
        z_uniform = np.full((X.shape[0], self._config.n_classes), 1.0 / self._config.n_classes)
        h = self.hidden_probabilities(X, z_uniform)
        return self.class_probabilities(h)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Most probable class for each row of ``X``."""
        return np.argmax(self.predict_proba(X), axis=1)
