"""Skew-insensitive Restricted Boltzmann Machine with a class layer.

Implements the neural architecture of Section V-A of the paper: a visible
layer ``v`` (features scaled to [0, 1]), a hidden layer ``h``, and a class
("softmax") layer ``z``.  Training uses Contrastive Divergence with ``k``
Gibbs steps on mini-batches (Eqs. 15-21) and the class-balanced loss weighting
of Eq. 13 via :class:`repro.core.loss.ClassBalancedWeighter`, which makes the
learned representation robust to multi-class imbalance.

The network is deliberately self-contained (pure NumPy) so the whole drift
detector has no dependencies beyond the scientific Python stack.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.loss import ClassBalancedWeighter

__all__ = ["RBMConfig", "SkewInsensitiveRBM"]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


def _softmax(x: np.ndarray) -> np.ndarray:
    shifted = x - x.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


@dataclass(frozen=True)
class RBMConfig:
    """Hyper-parameters of the skew-insensitive RBM (Table II, last block).

    Attributes
    ----------
    n_visible:
        Number of visible neurons ``V`` (= number of features).
    n_hidden:
        Number of hidden neurons ``H`` (the paper tunes it as a fraction of
        ``V``: 0.25V .. V).
    n_classes:
        Number of class neurons ``Z``.
    learning_rate:
        Gradient step ``eta`` of Eqs. 17-21.
    cd_steps:
        Number of Gibbs sampling steps ``k`` of CD-k.
    momentum:
        Classic momentum applied to all parameter updates.
    weight_decay:
        L2 penalty applied to the connection weights.
    balance_beta:
        ``beta`` of the class-balanced loss (effective number of samples).
    balance_decay:
        Forgetting factor of the running class counts used by the loss.
    seed:
        RNG seed for weight initialisation and Gibbs sampling.
    """

    n_visible: int
    n_hidden: int
    n_classes: int
    learning_rate: float = 0.05
    cd_steps: int = 1
    momentum: float = 0.5
    weight_decay: float = 1e-4
    balance_beta: float = 0.999
    balance_decay: float = 0.999
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.n_visible < 1 or self.n_hidden < 1:
            raise ValueError("layer sizes must be positive")
        if self.n_classes < 2:
            raise ValueError("n_classes must be >= 2")
        if self.learning_rate <= 0.0:
            raise ValueError("learning_rate must be positive")
        if self.cd_steps < 1:
            raise ValueError("cd_steps must be >= 1")
        if not 0.0 <= self.momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")


class SkewInsensitiveRBM:
    """Three-layer (visible / hidden / class) RBM trained with weighted CD-k."""

    def __init__(self, config: RBMConfig) -> None:
        self._config = config
        rng = np.random.default_rng(config.seed)
        scale = 0.01
        self._rng = rng
        # Connection weights: W (V x H) between v and h, U (H x Z) between h and z.
        self._W = rng.normal(0.0, scale, size=(config.n_visible, config.n_hidden))
        self._U = rng.normal(0.0, scale, size=(config.n_hidden, config.n_classes))
        self._a = np.zeros(config.n_visible)  # visible biases
        self._b = np.zeros(config.n_hidden)  # hidden biases
        self._c = np.zeros(config.n_classes)  # class biases
        self._vel_W = np.zeros_like(self._W)
        self._vel_U = np.zeros_like(self._U)
        self._vel_a = np.zeros_like(self._a)
        self._vel_b = np.zeros_like(self._b)
        self._vel_c = np.zeros_like(self._c)
        self._weighter = ClassBalancedWeighter(
            config.n_classes, beta=config.balance_beta, decay=config.balance_decay
        )
        self._n_batches_trained = 0

    # ---------------------------------------------------------------- state
    @property
    def config(self) -> RBMConfig:
        return self._config

    @property
    def n_batches_trained(self) -> int:
        return self._n_batches_trained

    @property
    def class_counts(self) -> np.ndarray:
        """Running class counts used by the class-balanced loss."""
        return self._weighter.counts

    @property
    def weights(self) -> dict[str, np.ndarray]:
        """Copies of all parameters (for inspection / serialisation)."""
        return {
            "W": self._W.copy(),
            "U": self._U.copy(),
            "a": self._a.copy(),
            "b": self._b.copy(),
            "c": self._c.copy(),
        }

    # -------------------------------------------------------- conditionals
    def hidden_probabilities(self, v: np.ndarray, z: np.ndarray) -> np.ndarray:
        """``P(h_j = 1 | v, z)`` — Eq. 10."""
        return _sigmoid(self._b + v @ self._W + z @ self._U.T)

    def visible_probabilities(self, h: np.ndarray) -> np.ndarray:
        """``P(v_i = 1 | h)`` — Eq. 11."""
        return _sigmoid(self._a + h @ self._W.T)

    def class_probabilities(self, h: np.ndarray) -> np.ndarray:
        """``P(z = 1_k | h)`` — softmax class layer, Eq. 12."""
        return _softmax(self._c + h @ self._U)

    def energy(self, v: np.ndarray, h: np.ndarray, z: np.ndarray) -> np.ndarray:
        """Energy function of Eq. 8 evaluated per row of the batch."""
        v = np.atleast_2d(v)
        h = np.atleast_2d(h)
        z = np.atleast_2d(z)
        linear = -(v @ self._a) - (h @ self._b) - (z @ self._c)
        pairwise = -np.einsum("ni,ij,nj->n", v, self._W, h) - np.einsum(
            "nj,jk,nk->n", h, self._U, z
        )
        return linear + pairwise

    def _one_hot(self, labels: np.ndarray) -> np.ndarray:
        labels = np.asarray(labels, dtype=np.int64)
        if labels.min() < 0 or labels.max() >= self._config.n_classes:
            raise ValueError("label out of range")
        encoded = np.zeros((labels.shape[0], self._config.n_classes))
        encoded[np.arange(labels.shape[0]), labels] = 1.0
        return encoded

    # ------------------------------------------------------------ training
    def partial_fit(self, X: np.ndarray, y: np.ndarray) -> float:
        """Run one weighted CD-k update on a mini-batch.

        Parameters
        ----------
        X:
            Mini-batch of feature rows already scaled to [0, 1].
        y:
            Integer labels of the mini-batch.

        Returns
        -------
        float
            Mean (unweighted) reconstruction MSE of the batch, useful as a
            cheap training-progress signal.
        """
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        y = np.asarray(y, dtype=np.int64)
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y disagree on batch size")
        if X.shape[1] != self._config.n_visible:
            raise ValueError(
                f"expected {self._config.n_visible} features, got {X.shape[1]}"
            )
        cfg = self._config
        self._weighter.observe(y)
        sample_weights = self._weighter.instance_weights(y)[:, None]

        v0 = X
        z0 = self._one_hot(y)
        h0_prob = self.hidden_probabilities(v0, z0)

        # Gibbs chain (CD-k).
        h_sample = (self._rng.random(h0_prob.shape) < h0_prob).astype(np.float64)
        vk_prob = v0
        zk_prob = z0
        hk_prob = h0_prob
        for _ in range(cfg.cd_steps):
            vk_prob = self.visible_probabilities(h_sample)
            zk_prob = self.class_probabilities(h_sample)
            hk_prob = self.hidden_probabilities(vk_prob, zk_prob)
            h_sample = (self._rng.random(hk_prob.shape) < hk_prob).astype(np.float64)

        batch_size = X.shape[0]
        weighted_v0 = v0 * sample_weights
        weighted_vk = vk_prob * sample_weights
        weighted_h0 = h0_prob * sample_weights
        weighted_hk = hk_prob * sample_weights

        grad_W = (weighted_v0.T @ h0_prob - weighted_vk.T @ hk_prob) / batch_size
        grad_U = (weighted_h0.T @ z0 - weighted_hk.T @ zk_prob) / batch_size
        grad_a = (weighted_v0 - weighted_vk).mean(axis=0)
        grad_b = (weighted_h0 - weighted_hk).mean(axis=0)
        grad_c = ((z0 - zk_prob) * sample_weights).mean(axis=0)

        lr = cfg.learning_rate
        mom = cfg.momentum
        decay = cfg.weight_decay
        self._vel_W = mom * self._vel_W + lr * (grad_W - decay * self._W)
        self._vel_U = mom * self._vel_U + lr * (grad_U - decay * self._U)
        self._vel_a = mom * self._vel_a + lr * grad_a
        self._vel_b = mom * self._vel_b + lr * grad_b
        self._vel_c = mom * self._vel_c + lr * grad_c
        self._W += self._vel_W
        self._U += self._vel_U
        self._a += self._vel_a
        self._b += self._vel_b
        self._c += self._vel_c

        self._n_batches_trained += 1
        return float(np.mean((v0 - vk_prob) ** 2))

    # ----------------------------------------------------------- inference
    def reconstruct(self, X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Reconstruct features and class scores for a labelled batch.

        Implements Eqs. 22-25: the hidden layer is derived from the observed
        instance (``v = x``, ``z = one_hot(y)``), then features and class
        support are reconstructed from the hidden probabilities.
        """
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        y = np.asarray(y, dtype=np.int64)
        z = self._one_hot(y)
        h = self.hidden_probabilities(X, z)
        x_recon = self.visible_probabilities(h)
        z_recon = self.class_probabilities(h)
        return x_recon, z_recon

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class-probability estimates using a free (unclamped) class layer."""
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        # With no class information, use the uniform class prior as input.
        z_uniform = np.full((X.shape[0], self._config.n_classes), 1.0 / self._config.n_classes)
        h = self.hidden_probabilities(X, z_uniform)
        return self.class_probabilities(h)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Most probable class for each row of ``X``."""
        return np.argmax(self.predict_proba(X), axis=1)
