"""The ``@hot_path`` marker for allocation-free inner loops.

Functions on the measured hot paths (the RBM CD-k update, the packed
forward/reconstruct passes, the fleet kernels) are written to reuse
persistent scratch buffers and route every NumPy ufunc through ``out=`` —
that is what the recorded BENCH_throughput.json speedups rest on.  The
discipline is easy to erode one innocent ``np.concatenate`` at a time, so
marked functions are *enforced* by the ``hot-path-alloc`` rule of
:mod:`repro.analysis`: inside an ``@hot_path`` function, allocating
combinators (``np.append``/``np.concatenate``/``np.vstack``/...) are
forbidden and ufunc-style calls must pass ``out=``.

The decorator itself is a pure marker (zero runtime overhead beyond one
attribute): the linter matches it syntactically, and the attribute lets
benchmarks discover marked functions at runtime.
"""

from __future__ import annotations

__all__ = ["hot_path"]


def hot_path(fn):
    """Mark ``fn`` as an allocation-free hot path (checked by the linter)."""
    fn.__hot_path__ = True
    return fn
